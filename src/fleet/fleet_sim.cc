#include "fleet/fleet_sim.hh"

#include <algorithm>
#include <cmath>

#include "base/stats.hh"

namespace bmhive {
namespace fleet {

ExitRateSummary
measureExitRates(Rng &rng, const ExitRateFleetParams &p)
{
    std::uint64_t above10k = 0, above50k = 0, above100k = 0;
    std::vector<double> rates;
    rates.reserve(p.numVms);
    double mu = std::log(p.bodyMedian);
    for (unsigned i = 0; i < p.numVms; ++i) {
        double rate;
        if (rng.chance(p.pathologicalFraction)) {
            // Log-uniform across the pathological band.
            double lo = std::log(p.pathologicalLo);
            double hi = std::log(p.pathologicalHi);
            rate = std::exp(rng.uniform(lo, hi));
        } else {
            rate = rng.lognormal(mu, p.bodySigma);
        }
        // A 5-minute Poisson count around the VM's mean rate; the
        // observed per-second rate is count / window.
        double expected = rate * p.windowSeconds;
        double count = expected <= 1e6
                           ? rng.normal(expected,
                                        std::sqrt(expected))
                           : expected;
        if (count < 0)
            count = 0;
        double observed = count / p.windowSeconds;
        rates.push_back(observed);
        if (observed > 1e4)
            ++above10k;
        if (observed > 5e4)
            ++above50k;
        if (observed > 1e5)
            ++above100k;
    }
    std::nth_element(rates.begin(), rates.begin() + rates.size() / 2,
                     rates.end());
    ExitRateSummary s;
    s.pctAbove10k = 100.0 * double(above10k) / double(p.numVms);
    s.pctAbove50k = 100.0 * double(above50k) / double(p.numVms);
    s.pctAbove100k = 100.0 * double(above100k) / double(p.numVms);
    s.medianRate = rates[rates.size() / 2];
    return s;
}

double
diurnalLoad(unsigned hour)
{
    // Datacenter host load swings over the day: quiet overnight,
    // busy through business+evening hours.
    double phase = 2.0 * M_PI * (double(hour) - 14.0) / 24.0;
    return 1.0 + 0.30 * std::cos(phase);
}

PreemptionSeries
measurePreemption(Rng &rng, const PreemptionFleetParams &p)
{
    PreemptionSeries out;
    out.p99Pct.resize(p.hours);
    out.p999Pct.resize(p.hours);

    // Per-VM character is stable across the day; host load is not.
    std::vector<double> vm_rate(p.numVms), vm_dur_us(p.numVms);
    for (unsigned v = 0; v < p.numVms; ++v) {
        vm_rate[v] =
            rng.lognormal(std::log(p.rateMedian), p.rateSigma);
        vm_dur_us[v] =
            rng.lognormal(std::log(p.durMedianUs), p.durSigma);
    }

    const double window_sec = 3600.0;
    std::vector<double> fractions(p.numVms);
    for (unsigned h = 0; h < p.hours; ++h) {
        double load = diurnalLoad(h);
        for (unsigned v = 0; v < p.numVms; ++v) {
            double lambda = vm_rate[v] * load * window_sec;
            double mean_d = vm_dur_us[v] * 1e-6;
            // Compound Poisson of exponential steals. Exact for
            // small event counts, Normal approximation above.
            double stolen;
            if (lambda < 64.0) {
                unsigned n = 0;
                // Knuth Poisson sampler.
                double l = std::exp(-lambda);
                double q = 1.0;
                do {
                    ++n;
                    q *= rng.uniform();
                } while (q > l);
                --n;
                stolen = 0.0;
                for (unsigned i = 0; i < n; ++i)
                    stolen += rng.exponential(mean_d);
            } else {
                double mean = lambda * mean_d;
                double var = lambda * 2.0 * mean_d * mean_d;
                stolen = rng.normal(mean, std::sqrt(var));
                if (stolen < 0)
                    stolen = 0;
            }
            fractions[v] =
                std::min(100.0, 100.0 * stolen / window_sec);
        }
        SampleSet set;
        for (double f : fractions)
            set.record(f);
        out.p99Pct[h] = set.percentile(0.99);
        out.p999Pct[h] = set.percentile(0.999);
    }
    return out;
}

} // namespace fleet
} // namespace bmhive

/**
 * @file
 * VmGuest: a KVM-style virtual machine, the baseline the paper
 * compares BM-Hive against. The guest's virtio devices are plain
 * software devices on a virtual PCI bus; their rings live in the
 * guest's memory, which the vhost-user backend maps directly — the
 * short I/O path that BM-Hive's separate memories preclude. In
 * exchange, every vCPU runs under VmExecutionModel (exits, steal,
 * EPT), and MMIO accesses trap (bus access latency = exit cost).
 */

#ifndef BMHIVE_VMSIM_VM_GUEST_HH
#define BMHIVE_VMSIM_VM_GUEST_HH

#include <memory>
#include <string>
#include <vector>

#include "cloud/block_service.hh"
#include "cloud/vswitch.hh"
#include "guest/blk_driver.hh"
#include "guest/guest_os.hh"
#include "guest/net_driver.hh"
#include "hv/io_service.hh"
#include "hw/cpu_model.hh"
#include "vmsim/vm_exec.hh"
#include "virtio/virtio_pci.hh"

namespace bmhive {
namespace vmsim {

/**
 * The guest-visible virtio device of a vm-guest. Registers are
 * emulated by the hypervisor: access latency comes from the bus
 * (one exit per MMIO). Completion interrupts are *injected*, which
 * is slower than hardware MSI.
 */
class VhostVirtioDevice : public virtio::VirtioPciDevice
{
  public:
    using VirtioPciDevice::VirtioPciDevice;

    /** Invoked on DRIVER_OK (used to wire the backend). */
    std::function<void()> onReady;

    void setDeviceCfgBytes(std::vector<std::uint8_t> bytes)
    {
        devCfg_ = std::move(bytes);
    }

  protected:
    void
    onQueueNotify(unsigned q) override
    {
        (void)q; // the backend polls; kicks are suppressed
    }

    void
    onDriverOk() override
    {
        if (onReady)
            onReady();
    }

    std::uint32_t
    deviceCfgRead(Addr offset, unsigned size) override
    {
        std::uint32_t v = 0;
        for (unsigned i = 0; i < size; ++i) {
            Addr idx = offset + i;
            std::uint8_t b =
                idx < devCfg_.size() ? devCfg_[idx] : 0;
            v |= std::uint32_t(b) << (8 * i);
        }
        return v;
    }

  private:
    std::vector<std::uint8_t> devCfg_;
};

struct VmGuestParams
{
    hw::CpuModel cpu; ///< set in .cc default (E5-2682 v4)
    unsigned vcpus = 16;
    Bytes memBytes = 64 * MiB; ///< simulation backing, not nominal
    bool exclusive = true;     ///< pinned instance (paper Fig 1)
    bool rateLimited = true;
    std::uint64_t mac = 0;
    std::uint64_t volumeSectors = 4 * MiB / 512;
    /** Model a busy multi-tenant host whose I/O threads contend
     *  (paper section 2.1). Off for dedicated-testbed runs. */
    bool ioThreadContention = true;
};

class VmGuest : public SimObject
{
  public:
    /**
     * @param backend_core  host core running this guest's vhost
     *        threads (gets a hostThread() execution model)
     */
    VmGuest(Simulation &sim, std::string name, VmGuestParams params,
            cloud::VSwitch &vswitch,
            cloud::BlockService *storage = nullptr,
            cloud::Volume *volume = nullptr);

    GuestMemory &memory() { return *mem_; }
    pci::PciBus &bus() { return *vbus_; }
    guest::GuestOs &os() { return *os_; }
    hw::CpuExecutor &vcpu(unsigned i);
    unsigned vcpuCount() const { return unsigned(vcpus_.size()); }
    VmExecutionModel &execModel() { return *execModel_; }
    hw::CpuExecutor &backendCore() { return *backendCore_; }
    hv::VirtioIoService &service() { return *service_; }

    static constexpr int netSlot = 3;
    static constexpr int blkSlot = 4;

    /**
     * Wire the vhost backend to the guest's rings. Call after the
     * guest drivers completed initialization.
     */
    bool connectBackends();

    /**
     * Full bring-up: enumerate the virtual PCI bus, start the
     * virtio drivers (the same driver code a bm-guest runs), and
     * connect the vhost backend. Returns false — recoverable, the
     * caller may retry or tear the guest down — if no backend
     * could be connected.
     */
    bool bringUp();

    guest::NetDriver &net() { return *netDrv_; }
    guest::BlkDriver *blk() { return blkDrv_.get(); }

    cloud::PortId port() const { return port_; }

  private:
    VmGuestParams params_;
    cloud::VSwitch &vswitch_;
    cloud::BlockService *storage_;
    cloud::Volume *volume_;

    std::unique_ptr<GuestMemory> mem_;
    std::unique_ptr<pci::PciBus> vbus_;
    std::unique_ptr<VmExecutionModel> execModel_;
    std::unique_ptr<VmExecutionModel> hostExecModel_;
    std::unique_ptr<VmExecutionModel> ioThreadExecModel_;
    std::unique_ptr<hw::CpuExecutor> ioThread_;
    std::vector<std::unique_ptr<hw::CpuExecutor>> vcpus_;
    std::unique_ptr<hw::CpuExecutor> backendCore_;
    std::unique_ptr<VhostVirtioDevice> netDev_;
    std::unique_ptr<VhostVirtioDevice> blkDev_;
    std::unique_ptr<guest::GuestOs> os_;
    std::unique_ptr<guest::NetDriver> netDrv_;
    std::unique_ptr<guest::BlkDriver> blkDrv_;
    std::unique_ptr<hv::VirtioIoService> service_;
    cloud::PortId port_ = 0;
    bool connected_ = false;
};

} // namespace vmsim
} // namespace bmhive

#endif // BMHIVE_VMSIM_VM_GUEST_HH

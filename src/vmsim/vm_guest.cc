#include "vmsim/vm_guest.hh"

#include <utility>

#include "base/logging.hh"
#include "virtio/virtio_blk.hh"
#include "virtio/virtio_net.hh"

namespace bmhive {
namespace vmsim {

using namespace virtio;

VmGuest::VmGuest(Simulation &sim, std::string name,
                 VmGuestParams params, cloud::VSwitch &vswitch,
                 cloud::BlockService *storage, cloud::Volume *volume)
    : SimObject(sim, std::move(name)), params_(params),
      vswitch_(vswitch), storage_(storage), volume_(volume)
{
    if (params_.cpu.model.empty())
        params_.cpu = hw::CpuCatalog::xeonE5_2682v4();

    mem_ = std::make_unique<GuestMemory>(this->name() + ".mem",
                                         params_.memBytes);
    // Every MMIO access to an emulated device traps to the
    // hypervisor: one exit worth of latency per access. Interrupts
    // are injected rather than delivered by hardware.
    vbus_ = std::make_unique<pci::PciBus>(
        sim, this->name() + ".vbus", paper::vmExitCost,
        Bandwidth::gbps(100), paper::vmIrqInjectCost);

    VmExecParams ep = params_.exclusive ? VmExecParams::exclusive()
                                        : VmExecParams::shared();
    execModel_ = std::make_unique<VmExecutionModel>(sim.rng(), ep);
    hostExecModel_ = std::make_unique<VmExecutionModel>(
        sim.rng(), VmExecParams::hostThread());

    for (unsigned i = 0; i < params_.vcpus; ++i) {
        vcpus_.push_back(std::make_unique<hw::CpuExecutor>(
            sim, this->name() + ".vcpu" + std::to_string(i),
            params_.cpu.singleThreadFactor, execModel_.get()));
    }
    backendCore_ = std::make_unique<hw::CpuExecutor>(
        sim, this->name() + ".vhost", 1.0, hostExecModel_.get());
    ioThreadExecModel_ = std::make_unique<VmExecutionModel>(
        sim.rng(), params_.ioThreadContention
                       ? VmExecParams::ioThread()
                       : VmExecParams::hostThread());
    ioThread_ = std::make_unique<hw::CpuExecutor>(
        sim, this->name() + ".iothread", 1.0,
        ioThreadExecModel_.get());

    // Virtio devices on the virtual bus.
    netDev_ = std::make_unique<VhostVirtioDevice>(
        sim, this->name() + ".vnet", DeviceType::Net, 2,
        VIRTIO_NET_F_CSUM | VIRTIO_NET_F_MAC | VIRTIO_NET_F_STATUS |
            VIRTIO_RING_F_INDIRECT_DESC);
    std::vector<std::uint8_t> ncfg(8, 0);
    for (int i = 0; i < 6; ++i)
        ncfg[i] = std::uint8_t(params_.mac >> (8 * i));
    ncfg[6] = 1;
    netDev_->setDeviceCfgBytes(std::move(ncfg));
    vbus_->attach(*netDev_, netSlot);

    if (storage_ != nullptr) {
        panic_if(volume_ == nullptr,
                 this->name(), ": storage without a volume");
        blkDev_ = std::make_unique<VhostVirtioDevice>(
            sim, this->name() + ".vblk", DeviceType::Block, 1,
            VIRTIO_BLK_F_SEG_MAX | VIRTIO_BLK_F_FLUSH |
                VIRTIO_RING_F_INDIRECT_DESC);
        std::vector<std::uint8_t> bcfg(8, 0);
        for (int i = 0; i < 8; ++i)
            bcfg[i] =
                std::uint8_t(params_.volumeSectors >> (8 * i));
        blkDev_->setDeviceCfgBytes(std::move(bcfg));
        vbus_->attach(*blkDev_, blkSlot);
    }

    std::vector<hw::CpuExecutor *> cpu_ptrs;
    for (auto &c : vcpus_)
        cpu_ptrs.push_back(c.get());
    os_ = std::make_unique<guest::GuestOs>(
        sim, this->name() + ".os", *mem_, *vbus_,
        std::move(cpu_ptrs));
    // Interrupt *injection* makes vm-guest IRQs more expensive
    // than native MSIs (world switch into the guest).
    os_->setIrqCost(paper::guestIrqCost + usToTicks(0.5));

    // vhost-user backend service over the guest's own memory.
    hv::IoServiceParams sp;
    sp.pollPeriod = paper::backendPollPeriod;
    sp.pollRegisterCost = 0;         // rings are in shared memory
    sp.completionRegisterCost = 0;
    sp.perPacketCost = nsToTicks(100);     // tuned vhost PMD fwd
    sp.perPacketCopyCost = nsToTicks(60);  // CPU memcpy per packet
    sp.blkExtraCost = paper::vmStorageCopyCost;
    sp.blkCopyBytesPerSec = 2.4e9; // QEMU block-layer copy path
    sp.suppressGuestNotify = true;   // PMD polls, kicks suppressed
    service_ = std::make_unique<hv::VirtioIoService>(
        sim, this->name() + ".vhost_svc", *backendCore_, sp);
    service_->setBlkCore(ioThread_.get());

    port_ = vswitch_.addPort(
        params_.mac,
        [this](const cloud::Packet &pkt) {
            service_->enqueueRx(pkt);
        });
}

bool
VmGuest::bringUp()
{
    os_->enumeratePci();
    netDrv_ = std::make_unique<guest::NetDriver>(*os_, netSlot,
                                                 params_.mac);
    netDrv_->start();
    if (blkDev_) {
        blkDrv_ = std::make_unique<guest::BlkDriver>(*os_, blkSlot);
        blkDrv_->start();
    }
    if (!connectBackends()) {
        warn(name(), ": vhost backend connection failed");
        return false;
    }
    return true;
}

hw::CpuExecutor &
VmGuest::vcpu(unsigned i)
{
    panic_if(i >= vcpus_.size(), name(), ": bad vcpu ", i);
    return *vcpus_[i];
}

bool
VmGuest::connectBackends()
{
    panic_if(connected_, name(), ": backends already connected");
    bool any = false;

    if (netDev_->driverOk() &&
        netDev_->queueState(NET_RXQ).enabled &&
        netDev_->queueState(NET_TXQ).enabled) {
        auto limiter = params_.rateLimited
                           ? cloud::InstanceLimits::cloudNetwork()
                           : cloud::DualRateLimiter::unlimited();
        VhostVirtioDevice *dev = netDev_.get();
        hv::VirtioIoService *svc = service_.get();
        service_->attachNet(
            *mem_, netDev_->queueState(NET_RXQ).layout(),
            netDev_->queueState(NET_TXQ).layout(),
            [dev, svc] {
                if (svc->netRxQueue()->shouldInterrupt())
                    dev->notifyGuest(NET_RXQ);
            },
            [dev, svc] {
                if (svc->netTxQueue()->shouldInterrupt())
                    dev->notifyGuest(NET_TXQ);
            },
            vswitch_, port_, limiter);
        any = true;
    }

    if (blkDev_ && blkDev_->driverOk() &&
        blkDev_->queueState(0).enabled) {
        auto limiter = params_.rateLimited
                           ? cloud::InstanceLimits::cloudStorage()
                           : cloud::DualRateLimiter::unlimited();
        VhostVirtioDevice *dev = blkDev_.get();
        hv::VirtioIoService *svc = service_.get();
        service_->attachBlk(
            *mem_, blkDev_->queueState(0).layout(),
            [dev, svc] {
                if (svc->blkQueue()->shouldInterrupt())
                    dev->notifyGuest(0);
            },
            *storage_, *volume_, limiter);
        any = true;
    }

    if (any) {
        connected_ = true;
        service_->start();
    }
    return any;
}

} // namespace vmsim
} // namespace bmhive

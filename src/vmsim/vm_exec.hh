/**
 * @file
 * VmExecutionModel: how CPU work is stretched inside a KVM-style
 * vm-guest (paper section 2.1):
 *  - every exit-causing event (MMIO, MSR writes, IPIs) costs
 *    ~10 us of hypervisor handling;
 *  - a background exit rate covers timers and housekeeping;
 *  - host tasks preempt vCPUs, stealing slices of wall time (Fig 1
 *    quantifies p99/p99.9 of this for shared vs exclusive VMs);
 *  - EPT-lengthened page walks stretch memory-intensive work.
 *
 * Bare-metal guests use no execution model at all — their CPUs run
 * untouched, which is the paper's core performance claim.
 */

#ifndef BMHIVE_VMSIM_VM_EXEC_HH
#define BMHIVE_VMSIM_VM_EXEC_HH

#include <deque>
#include <utility>

#include "base/paper_constants.hh"
#include "base/random.hh"
#include "base/stats.hh"
#include "hw/cpu_executor.hh"

namespace bmhive {
namespace vmsim {

struct VmExecParams
{
    /** Hypervisor handling time per exit. */
    Tick exitCost = paper::vmExitCost;
    /** Background exit rate (timers, IPIs), exits/s. */
    double backgroundExitsPerSec = 1000.0;
    /** Host-task preemptions of this vCPU, events/s. */
    double preemptRatePerSec = 2.0;
    /** Mean stolen time per preemption (exponential). */
    Tick preemptMeanDuration = usToTicks(200);
    /** Multiplier on all work from two-level paging. */
    double memStretch = paper::eptMemoryStretch;

    /** A pinned, exclusive high-end VM (paper Fig. 1). */
    static VmExecParams
    exclusive()
    {
        VmExecParams p;
        p.preemptRatePerSec = 0.35;
        p.preemptMeanDuration = usToTicks(120);
        return p;
    }

    /** A shared (unpinned) VM: more and longer preemption. */
    static VmExecParams
    shared()
    {
        VmExecParams p;
        p.preemptRatePerSec = 18.0;
        p.preemptMeanDuration = usToTicks(1400);
        return p;
    }

    /** The storage iothread: contends with the 8-10 I/O cores the
     *  hypervisor burns on a busy server (paper section 2.1), so
     *  it sees frequent, long scheduler preemptions. */
    static VmExecParams
    ioThread()
    {
        VmExecParams p;
        p.exitCost = 0;
        p.backgroundExitsPerSec = 0;
        p.preemptRatePerSec = 68.0;
        p.preemptMeanDuration = usToTicks(1300);
        p.memStretch = 1.0;
        return p;
    }

    /** A host service thread (vhost): steal only, no guest exits. */
    static VmExecParams
    hostThread()
    {
        VmExecParams p;
        p.exitCost = 0;
        p.backgroundExitsPerSec = 0;
        p.preemptRatePerSec = 1.5;
        p.preemptMeanDuration = usToTicks(200);
        p.memStretch = 1.0;
        return p;
    }
};

class VmExecutionModel : public hw::ExecutionModel
{
  public:
    VmExecutionModel(Rng &rng, VmExecParams params)
        : rng_(rng), params_(params) {}

    Tick
    stretch(Tick start, Tick nominal, unsigned exits) override
    {
        double dur = double(nominal) * params_.memStretch;
        // Explicit exits plus background exits over the interval.
        double n_exits =
            double(exits) +
            params_.backgroundExitsPerSec * ticksToSec(nominal);
        dur += n_exits * double(params_.exitCost);

        // Host preemption occupies *wall-clock* windows: work that
        // lands in (or spans) a stolen window waits it out. The
        // windows persist until wall time passes them, so several
        // work items (or vCPUs) caught by one preemption all wait
        // — matching how Fig 1 measures preemption as a fraction
        // of the VM's lifetime, independent of vCPU business.
        if (params_.preemptRatePerSec > 0.0) {
            Tick work = Tick(dur);
            Tick cursor = start;
            Tick extra = 0;
            std::size_t idx = 0;
            while (true) {
                ensureWindows(cursor + work + 1);
                // First window that has not ended by `cursor`.
                while (idx < windows_.size() &&
                       windows_[idx].second <= cursor)
                    ++idx;
                if (idx >= windows_.size())
                    break; // generation horizon exceeded: done
                auto [ws, we] = windows_[idx];
                if (cursor >= ws) {
                    // Inside a stall: wait it out.
                    Tick wait = we - cursor;
                    extra += wait;
                    cursor = we;
                    stolen_.record(double(wait));
                    continue;
                }
                Tick runway = ws - cursor;
                if (work <= runway)
                    break;
                work -= runway;
                cursor = ws;
            }
            prune(start);
            return Tick(dur) + extra;
        }
        return Tick(dur);
    }

    /** Fraction of time stolen so far (for Fig 1 style reports). */
    const SummaryStats &stolenTime() const { return stolen_; }
    const VmExecParams &params() const { return params_; }

  private:
    /** Generate stall windows covering wall time up to @p until. */
    void
    ensureWindows(Tick until)
    {
        while (genEnd_ <= until) {
            double gap = rng_.exponential(
                double(tickSec) / params_.preemptRatePerSec);
            Tick ws = genEnd_ + Tick(gap);
            Tick we =
                ws + Tick(rng_.exponential(
                         double(params_.preemptMeanDuration)));
            windows_.push_back({ws, we});
            genEnd_ = we;
        }
    }

    /** Drop windows far behind the current wall time. Callers
     *  (vCPUs of one guest) stay within a bounded skew of each
     *  other; one simulated second of slack is generous. */
    void
    prune(Tick cursor)
    {
        while (windows_.size() > 8 &&
               windows_.front().second + tickSec < cursor)
            windows_.pop_front();
    }

    Rng &rng_;
    VmExecParams params_;
    SummaryStats stolen_;
    std::deque<std::pair<Tick, Tick>> windows_;
    Tick genEnd_ = 0;
};

} // namespace vmsim
} // namespace bmhive

#endif // BMHIVE_VMSIM_VM_EXEC_HH

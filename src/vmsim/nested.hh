/**
 * @file
 * Nested-virtualization cost model (paper section 2.3): a guest
 * hypervisor runs inside a VM, so every L2 exit is emulated by L1,
 * which itself exits to L0 several times (the Turtles effect).
 * The paper reports a nested guest reaching ~80% of native for CPU
 * work and ~25% for I/O-intensive programs; BM-Hive avoids all of
 * it by giving the user hypervisor the real hardware.
 */

#ifndef BMHIVE_VMSIM_NESTED_HH
#define BMHIVE_VMSIM_NESTED_HH

#include "base/paper_constants.hh"
#include "vmsim/vm_exec.hh"

namespace bmhive {
namespace vmsim {

/**
 * Exit amplification: one L2 exit causes this many L0 exits (VMCS
 * shadowing reduces but does not eliminate it).
 */
constexpr double nestedExitAmplification = 5.0;

/** Execution parameters of a nested (L2) guest's vCPU. */
inline VmExecParams
nestedExecParams()
{
    VmExecParams p;
    p.exitCost =
        Tick(double(paper::vmExitCost) * nestedExitAmplification);
    p.backgroundExitsPerSec = 4000.0; // L1 housekeeping included
    p.preemptRatePerSec = 4.0;        // both L0 and L1 schedulers
    p.preemptMeanDuration = usToTicks(300);
    p.memStretch = 1.04; // three-level paging
    return p;
}

/**
 * Fraction of native throughput a nested guest achieves for a
 * workload that causes @p exits_per_sec_native exits per second of
 * work at native speed.
 */
inline double
nestedEfficiency(double exits_per_sec_native)
{
    VmExecParams p = nestedExecParams();
    double overhead_per_sec =
        exits_per_sec_native * ticksToSec(p.exitCost) +
        p.backgroundExitsPerSec * ticksToSec(p.exitCost);
    double stretched = p.memStretch + overhead_per_sec;
    return 1.0 / stretched;
}

/** Single-level (plain VM) efficiency for the same workload. */
inline double
singleLevelEfficiency(double exits_per_sec_native)
{
    VmExecParams p; // defaults = plain VM
    double overhead_per_sec =
        exits_per_sec_native * ticksToSec(p.exitCost) +
        p.backgroundExitsPerSec * ticksToSec(p.exitCost);
    double stretched = p.memStretch + overhead_per_sec;
    return 1.0 / stretched;
}

/** Representative native exit rates for the section 2.3 bench. */
constexpr double cpuWorkloadExitRate = 200.0;    // compute-bound
constexpr double ioWorkloadExitRate = 55000.0;   // I/O-intensive

} // namespace vmsim
} // namespace bmhive

#endif // BMHIVE_VMSIM_NESTED_HH

/**
 * @file
 * T10-DIF-style protection information for the block path: an
 * 8-byte tag per 512-byte sector, carrying a CRC16 guard over the
 * sector's bytes and a reference tag derived from the target LBA.
 * Tags are appended after the payload in the data segment, so they
 * travel through every stage that can corrupt the payload (vrings,
 * IO-Bond DMA, the storage fabric) and any stage can verify them.
 */

#ifndef BMHIVE_CLOUD_DIF_HH
#define BMHIVE_CLOUD_DIF_HH

#include <array>
#include <cstdint>
#include <vector>

#include "base/checksum.hh"
#include "base/units.hh"

namespace bmhive {
namespace cloud {

constexpr Bytes difSectorBytes = 512;
constexpr Bytes difTagBytes = 8;
constexpr Bytes difProtectedSectorBytes =
    difSectorBytes + difTagBytes;

/** Wire length of @p payload bytes with per-sector tags appended. */
constexpr Bytes
difWireBytes(Bytes payload)
{
    return payload + payload / difSectorBytes * difTagBytes;
}

/** Payload length carried by a tagged buffer of @p wire bytes. */
constexpr Bytes
difPayloadBytes(Bytes wire)
{
    return wire / difProtectedSectorBytes * difSectorBytes;
}

/** Tag of one 512-byte sector destined for @p lba. */
inline std::array<std::uint8_t, difTagBytes>
difTag(const std::uint8_t *sector, std::uint64_t lba)
{
    std::array<std::uint8_t, difTagBytes> t{};
    std::uint16_t guard = crc16T10dif(sector, difSectorBytes);
    t[0] = std::uint8_t(guard);
    t[1] = std::uint8_t(guard >> 8);
    // t[2..3]: application tag, unused.
    auto ref = std::uint32_t(lba);
    t[4] = std::uint8_t(ref);
    t[5] = std::uint8_t(ref >> 8);
    t[6] = std::uint8_t(ref >> 16);
    t[7] = std::uint8_t(ref >> 24);
    return t;
}

/** Tags for every sector of @p payload (size multiple of 512). */
inline std::vector<std::uint8_t>
difBuildTags(const std::vector<std::uint8_t> &payload,
             std::uint64_t lba)
{
    std::size_t n = payload.size() / difSectorBytes;
    std::vector<std::uint8_t> tags;
    tags.reserve(n * difTagBytes);
    for (std::size_t i = 0; i < n; ++i) {
        auto t = difTag(payload.data() + i * difSectorBytes,
                        lba + i);
        tags.insert(tags.end(), t.begin(), t.end());
    }
    return tags;
}

/**
 * Verify a payload+tags buffer (payload first, tags appended).
 * @return the first bad sector index, or -1 if the buffer is clean.
 *         A buffer whose size is not a whole number of protected
 *         sectors fails at sector 0.
 */
inline int
difCheck(const std::vector<std::uint8_t> &buf, std::uint64_t lba)
{
    std::size_t n = buf.size() / difProtectedSectorBytes;
    if (n * difProtectedSectorBytes != buf.size())
        return 0;
    const std::uint8_t *tags =
        buf.data() + n * difSectorBytes;
    for (std::size_t i = 0; i < n; ++i) {
        auto want = difTag(buf.data() + i * difSectorBytes,
                           lba + i);
        for (std::size_t b = 0; b < difTagBytes; ++b)
            if (tags[i * difTagBytes + b] != want[b])
                return int(i);
    }
    return -1;
}

} // namespace cloud
} // namespace bmhive

#endif // BMHIVE_CLOUD_DIF_HH

#include "cloud/block_service.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "base/logging.hh"
#include "cloud/dif.hh"

namespace bmhive {
namespace cloud {

void
Volume::writeData(std::uint64_t lba,
                  const std::vector<std::uint8_t> &data)
{
    panic_if((lba + (data.size() + 511) / 512) * 512 > capacity_,
             name_, ": write beyond capacity");
    std::size_t off = 0;
    while (off < data.size()) {
        auto &block = blocks_[lba + off / 512];
        std::size_t n = std::min<std::size_t>(512, data.size() - off);
        std::copy_n(data.begin() + long(off), n, block.begin());
        if (n < 512)
            std::fill(block.begin() + long(n), block.end(), 0);
        off += n;
    }
}

std::vector<std::uint8_t>
Volume::readData(std::uint64_t lba, Bytes len) const
{
    panic_if(lba * 512 + len > capacity_,
             name_, ": read beyond capacity");
    std::vector<std::uint8_t> out(len, 0);
    Bytes off = 0;
    while (off < len) {
        auto it = blocks_.find(lba + off / 512);
        Bytes n = std::min<Bytes>(512, len - off);
        if (it != blocks_.end())
            std::copy_n(it->second.begin(), n,
                        out.begin() + long(off));
        off += n;
    }
    return out;
}

void
Volume::writeTags(std::uint64_t lba,
                  const std::vector<std::uint8_t> &tags)
{
    std::size_t n = tags.size() / difTagBytes;
    for (std::size_t i = 0; i < n; ++i) {
        auto &t = tags_[lba + i];
        std::copy_n(tags.begin() + long(i * difTagBytes),
                    difTagBytes, t.begin());
    }
}

std::vector<std::uint8_t>
Volume::readTags(std::uint64_t lba, Bytes payload_len) const
{
    std::size_t n = payload_len / difSectorBytes;
    auto data = readData(lba, n * difSectorBytes);
    std::vector<std::uint8_t> out;
    out.reserve(n * difTagBytes);
    for (std::size_t i = 0; i < n; ++i) {
        auto it = tags_.find(lba + i);
        if (it != tags_.end()) {
            out.insert(out.end(), it->second.begin(),
                       it->second.end());
        } else {
            auto t = difTag(data.data() + i * difSectorBytes,
                            lba + i);
            out.insert(out.end(), t.begin(), t.end());
        }
    }
    return out;
}

BlockService::BlockService(Simulation &sim, std::string name,
                           Params params)
    : SimObject(sim, std::move(name)), params_(params),
      channelFree_(params.channels, 0),
      completed_(metrics().counter(this->name() + ".completed")),
      reads_(metrics().counter(this->name() + ".reads")),
      writes_(metrics().counter(this->name() + ".writes")),
      faultLost_(metrics().counter(this->name() + ".fault.lost")),
      faultDelayed_(
          metrics().counter(this->name() + ".fault.delayed")),
      fabricCorruptions_(metrics().counter(
          this->name() + ".integrity.fabric_corruptions")),
      serviceLatency_(metrics().latency(this->name() + ".service"))
{
    panic_if(params.channels == 0, "storage needs >= 1 channel");
    sim_.faults().add(this->name(), [this](const fault::FaultSpec &s) {
        return injectFault(s);
    });
}

BlockService::~BlockService() { sim_.faults().remove(name()); }

bool
BlockService::injectFault(const fault::FaultSpec &spec)
{
    switch (spec.kind) {
      case fault::FaultKind::BlockLose:
        loseBudget_ += spec.count ? spec.count : 1;
        return true;
      case fault::FaultKind::BlockDelay:
        delayBudget_ += spec.count ? spec.count : 1;
        delayExtra_ =
            spec.duration
                ? spec.duration
                : Tick(double(params_.gcPause) *
                       std::max(1.0, spec.magnitude));
        return true;
      case fault::FaultKind::FabricCorrupt:
        corruptBudget_ += spec.count ? spec.count : 1;
        return true;
      default:
        return false;
    }
}

bool
BlockService::takeCorruption()
{
    if (corruptBudget_ == 0)
        return false;
    --corruptBudget_;
    fabricCorruptions_.inc();
    return true;
}

Volume &
BlockService::createVolume(const std::string &name, Bytes capacity)
{
    volumes_.push_back(std::make_unique<Volume>(name, capacity));
    return *volumes_.back();
}

Tick
BlockService::occupyChannel(Tick start, Tick service)
{
    auto it = std::min_element(channelFree_.begin(),
                               channelFree_.end());
    Tick begin = std::max(start, *it);
    Tick end = begin + service;
    *it = end;
    return end;
}

Tick
BlockService::drawService(const BlockIo &io)
{
    // SSD service time: lognormal around the median, plus the
    // occasional housekeeping pause that produces the p99.9 tail.
    Tick median = io.write ? params_.writeServiceMedian
                           : params_.readServiceMedian;
    double mu = std::log(double(median));
    Tick service = Tick(rng().lognormal(mu, params_.serviceSigma));
    if (rng().chance(params_.gcChance))
        service += params_.gcPause;

    // Larger I/Os stream at the flash channel bandwidth.
    if (io.len > 4 * KiB) {
        service +=
            params_.streamBandwidth.transferTime(io.len - 4 * KiB);
    }

    // Injected latency spike (fabric congestion / failover).
    if (delayBudget_ > 0) {
        --delayBudget_;
        faultDelayed_.inc();
        service += delayExtra_;
    }
    return service;
}

void
BlockService::submit(Volume &vol, BlockIo io)
{
    (void)vol;
    // An injected fabric loss: the request vanishes and its
    // completion never fires. Recovery is the submitter's timeout.
    if (loseBudget_ > 0) {
        --loseBudget_;
        faultLost_.inc();
        return;
    }
    // Request travels to the storage cluster: latency + wire time
    // of the command (reads) or command+data (writes).
    Bytes from_storage = io.write ? 64 : io.len + 64;
    io.submittedAt = curTick();
    Tick t = curTick() + requestDelay(io);

    Tick service = drawService(io);
    Tick done_at_storage = occupyChannel(t, service);
    Tick completion = done_at_storage + params_.networkLatency +
                      params_.networkBandwidth.transferTime(
                          from_storage);

    completed_.inc();
    if (io.write)
        writes_.inc();
    else
        reads_.inc();
    serviceLatency_.record(completion - io.submittedAt);
    // Classic path: wire corruption stays the submitter's business
    // (it claims takeCorruption() itself, preserving the historical
    // claim ordering), so done always reports a clean wire here.
    auto done = std::move(io.done);
    auto *ev = new OneShotEvent([done = std::move(done)] {
            done(false);
        }, name() + ".complete");
    eventq().schedule(ev, completion);
}

void
BlockService::submitArrived(Volume &vol, BlockIo io)
{
    (void)vol;
    // The request leg already elapsed on the way here (the
    // submitter posted across partitions with requestDelay() of
    // modelled latency), so service starts now.
    if (loseBudget_ > 0) {
        --loseBudget_;
        faultLost_.inc();
        return;
    }
    Bytes from_storage = io.write ? 64 : io.len + 64;
    Tick service = drawService(io);
    Tick done_at_storage = occupyChannel(curTick(), service);
    Tick completion = done_at_storage + params_.networkLatency +
                      params_.networkBandwidth.transferTime(
                          from_storage);

    completed_.inc();
    if (io.write)
        writes_.inc();
    else
        reads_.inc();
    serviceLatency_.record(completion - io.submittedAt);
    // Claim return-leg corruption here, in arrival order on the
    // control partition — deterministic for any thread count —
    // and ship the verdict with the completion.
    bool wire = !io.write && io.wantCorruption && takeCorruption();
    auto done = std::move(io.done);
    sim_.post(io.srcPartition, completion,
              [done = std::move(done), wire] { done(wire); },
              Event::defaultPri, name() + ".complete");
}

} // namespace cloud
} // namespace bmhive

#include "cloud/vswitch.hh"

#include <utility>

#include "base/logging.hh"

namespace bmhive {
namespace cloud {

VSwitch::VSwitch(Simulation &sim, std::string name, Params params)
    : SimObject(sim, std::move(name)), params_(params),
      forwarded_(metrics().counter(this->name() + ".forwarded")),
      dropped_(metrics().counter(this->name() + ".dropped")),
      uplinkTx_(metrics().counter(this->name() + ".uplink_tx")),
      bytes_(metrics().counter(this->name() + ".bytes_switched")),
      faultInjected_(
          metrics().counter(this->name() + ".fault.injected")),
      faultRecovered_(
          metrics().counter(this->name() + ".fault.recovered")),
      framesChecked_(metrics().counter(
          this->name() + ".integrity.frames_checked")),
      frameDrops_(metrics().counter(
          this->name() + ".integrity.frame_drops")),
      fabricCorruptions_(metrics().counter(
          this->name() + ".integrity.fabric_corruptions"))
{
    sim_.faults().add(this->name(), [this](const fault::FaultSpec &s) {
        return injectFault(s);
    });
}

VSwitch::~VSwitch() { sim_.faults().remove(name()); }

bool
VSwitch::injectFault(const fault::FaultSpec &spec)
{
    if (spec.kind == fault::FaultKind::FabricCorrupt) {
        corruptBudget_ += spec.count ? spec.count : 1;
        faultInjected_.inc();
        return true;
    }
    if (spec.kind != fault::FaultKind::PortStall)
        return false;
    auto id = PortId(spec.magnitude);
    if (id >= ports_.size())
        return false;
    stallPort(id,
              spec.duration ? spec.duration : usToTicks(100));
    return true;
}

void
VSwitch::stallPort(PortId id, Tick duration)
{
    panic_if(id >= ports_.size(), name(), ": bad port ", id);
    Port &port = ports_[id];
    Tick until = curTick() + duration;
    if (until <= port.stallUntil)
        return; // already stalled at least that long
    port.stallUntil = until;
    faultInjected_.inc();
    auto *ev = new OneShotEvent([this, id] { flushPort(id); },
                                name() + ".unstall");
    eventq().schedule(ev, until);
}

void
VSwitch::flushPort(PortId id)
{
    Port &port = ports_[id];
    if (curTick() < port.stallUntil)
        return; // a later stall extended the deadline
    auto pending = std::move(port.stalled);
    port.stalled.clear();
    faultRecovered_.inc();
    for (const Packet &pkt : pending)
        deliverTo(id, pkt, curTick());
}

PortId
VSwitch::addPort(MacAddr mac, PacketHandler rx)
{
    panic_if(macTable_.count(mac),
             name(), ": duplicate MAC ", mac);
    auto id = PortId(ports_.size());
    Port port;
    port.mac = mac;
    port.rx = std::move(rx);
    ports_.push_back(std::move(port));
    macTable_[mac] = id;
    return id;
}

void
VSwitch::removePort(PortId id)
{
    panic_if(id >= ports_.size(), name(), ": bad port ", id);
    macTable_.erase(ports_[id].mac);
    ports_[id].rx = nullptr;
    ports_[id].rxq = nullptr;
}

void
VSwitch::setPortRss(PortId id, unsigned queues,
                    QueuedPacketHandler rxq, std::uint64_t key)
{
    panic_if(id >= ports_.size(), name(), ": bad port ", id);
    Port &port = ports_[id];
    port.rxq = std::move(rxq);
    port.rss = mq::RssTable(queues ? queues : 1, key);
}

void
VSwitch::setPortRssQueues(PortId id, unsigned queues)
{
    panic_if(id >= ports_.size(), name(), ": bad port ", id);
    Port &port = ports_[id];
    if (port.rxq)
        port.rss.resize(queues ? queues : 1);
}

unsigned
VSwitch::portRssQueues(PortId id) const
{
    panic_if(id >= ports_.size(), name(), ": bad port ", id);
    return ports_[id].rxq ? ports_[id].rss.queues() : 1;
}

void
VSwitch::send(PortId from, const Packet &pkt)
{
    panic_if(from >= ports_.size(), name(), ": bad port ", from);
    forward(pkt);
}

void
VSwitch::receiveFromUplink(const Packet &pkt)
{
    forward(pkt);
}

void
VSwitch::forward(const Packet &pktIn)
{
    Packet pkt = pktIn;
    if (corruptBudget_ > 0) {
        // Armed FabricCorrupt: flip a metadata field on the wire.
        // The created timestamp keeps forwarding deterministic
        // while still breaking the frame checksum.
        --corruptBudget_;
        pkt.created ^= 0xA5A5;
        fabricCorruptions_.inc();
    }
    if (integrity_ && pkt.csum != 0) {
        // Ingress FCS check: a sealed frame that fails its checksum
        // never propagates — the receiver sees a loss, not garbage.
        framesChecked_.inc();
        if (!packetCsumOk(pkt)) {
            frameDrops_.inc();
            dropped_.inc();
            return;
        }
    }

    // Serialize on the switching core: poll-mode processing.
    Tick start = std::max(curTick(), coreFree_);
    Tick done = start + params_.perPacketCost;
    coreFree_ = done;

    auto it = macTable_.find(pkt.dst);
    if (it != macTable_.end()) {
        PortId pid = it->second;
        Port &port = ports_[pid];
        if (curTick() < port.stallUntil) {
            // Stalled port: park the frame until the flush (or
            // drop once the bounded buffer fills, like any switch).
            if (port.stalled.size() >= stallBufferCap) {
                dropped_.inc();
                return;
            }
            port.stalled.push_back(pkt);
            return;
        }
        deliverTo(pid, pkt, done);
        return;
    }

    if (uplink_) {
        Tick xfer = params_.uplinkBandwidth.transferTime(pkt.len);
        Tick depart = std::max(done, uplinkFree_);
        Tick arrive = depart + xfer;
        uplinkFree_ = arrive;
        forwarded_.inc();
        uplinkTx_.inc();
        bytes_.inc(pkt.len);
        Packet copy = pkt;
        if (sim_.partitioned() && uplinkPartition_ != partition()) {
            // The frame leaves this server partition: hand it to
            // the fabric through the mailbox. The NIC-egress PCIe
            // hop bounds the handoff below by the lookahead, which
            // is exactly what makes the conservative window safe.
            Tick hand = std::max(arrive, curTick() + sim_.lookahead());
            auto fn = uplink_;
            sim_.post(uplinkPartition_, hand,
                      [fn, copy] { fn(copy); }, Event::defaultPri,
                      name() + ".uplink");
            return;
        }
        auto *ev = new OneShotEvent(
            [this, copy] { uplink_(copy); }, name() + ".uplink");
        eventq().schedule(ev, arrive);
        return;
    }

    dropped_.inc();
}

void
VSwitch::deliverTo(PortId pid, const Packet &pkt, Tick ready)
{
    Port &port = ports_[pid];
    // Serialize on the destination port link.
    Tick xfer = params_.portBandwidth.transferTime(pkt.len);
    Tick depart = std::max(ready, port.linkFree);
    Tick arrive = depart + xfer;
    port.linkFree = arrive;
    forwarded_.inc();
    bytes_.inc(pkt.len);
    Packet copy = pkt;
    auto *ev = new OneShotEvent(
        [this, pid, copy] {
            Port &p = ports_[pid];
            if (p.rxq) {
                // RSS: hash the flow tuple through the port's
                // indirection table to pick the rx queue.
                p.rxq(copy, p.rss.queueFor(copy.src, copy.dst,
                                           copy.flow));
            } else if (p.rx) {
                p.rx(copy);
            }
        },
        name() + ".deliver");
    eventq().schedule(ev, arrive);
}

NetFabric::NetFabric(Simulation &sim, std::string name,
                     Tick propagation)
    : SimObject(sim, std::move(name)), propagation_(propagation)
{
}

void
NetFabric::attach(VSwitch &sw)
{
    switches_.push_back(&sw);
    sw.setUplink([this](const Packet &pkt) { route(pkt); },
                 partition());
}

void
NetFabric::learn(MacAddr mac, VSwitch &sw)
{
    where_[mac] = &sw;
}

void
NetFabric::route(const Packet &pkt)
{
    auto it = where_.find(pkt.dst);
    if (it == where_.end())
        return; // no such host: silently dropped by the fabric
    VSwitch *sw = it->second;
    Packet copy = pkt;
    // Scheduled on the destination switch's queue: identical in a
    // classic simulation (one shared queue), and in a partitioned
    // one the delivery executes inside the destination partition at
    // the correct tick instead of against its parked clock.
    auto *ev = new OneShotEvent(
        [sw, copy] { sw->receiveFromUplink(copy); },
        name() + ".route");
    sw->eventq().schedule(ev, curTick() + propagation_);
}

} // namespace cloud
} // namespace bmhive

#include "cloud/vswitch.hh"

#include <utility>

#include "base/logging.hh"

namespace bmhive {
namespace cloud {

VSwitch::VSwitch(Simulation &sim, std::string name, Params params)
    : SimObject(sim, std::move(name)), params_(params),
      forwarded_(metrics().counter(this->name() + ".forwarded")),
      dropped_(metrics().counter(this->name() + ".dropped")),
      uplinkTx_(metrics().counter(this->name() + ".uplink_tx")),
      bytes_(metrics().counter(this->name() + ".bytes_switched"))
{
}

PortId
VSwitch::addPort(MacAddr mac, PacketHandler rx)
{
    panic_if(macTable_.count(mac),
             name(), ": duplicate MAC ", mac);
    auto id = PortId(ports_.size());
    ports_.push_back(Port{mac, std::move(rx), 0});
    macTable_[mac] = id;
    return id;
}

void
VSwitch::removePort(PortId id)
{
    panic_if(id >= ports_.size(), name(), ": bad port ", id);
    macTable_.erase(ports_[id].mac);
    ports_[id].rx = nullptr;
}

void
VSwitch::send(PortId from, const Packet &pkt)
{
    panic_if(from >= ports_.size(), name(), ": bad port ", from);
    forward(pkt);
}

void
VSwitch::receiveFromUplink(const Packet &pkt)
{
    forward(pkt);
}

void
VSwitch::forward(const Packet &pkt)
{
    // Serialize on the switching core: poll-mode processing.
    Tick start = std::max(curTick(), coreFree_);
    Tick done = start + params_.perPacketCost;
    coreFree_ = done;

    auto it = macTable_.find(pkt.dst);
    if (it != macTable_.end()) {
        PortId pid = it->second;
        Port &port = ports_[pid];
        // Serialize on the destination port link.
        Tick xfer = params_.portBandwidth.transferTime(pkt.len);
        Tick depart = std::max(done, port.linkFree);
        Tick arrive = depart + xfer;
        port.linkFree = arrive;
        forwarded_.inc();
        bytes_.inc(pkt.len);
        Packet copy = pkt;
        auto *ev = new OneShotEvent(
            [this, pid, copy] {
                Port &p = ports_[pid];
                if (p.rx)
                    p.rx(copy);
            },
            name() + ".deliver");
        eventq().schedule(ev, arrive);
        return;
    }

    if (uplink_) {
        Tick xfer = params_.uplinkBandwidth.transferTime(pkt.len);
        Tick depart = std::max(done, uplinkFree_);
        Tick arrive = depart + xfer;
        uplinkFree_ = arrive;
        forwarded_.inc();
        uplinkTx_.inc();
        bytes_.inc(pkt.len);
        Packet copy = pkt;
        auto *ev = new OneShotEvent(
            [this, copy] { uplink_(copy); }, name() + ".uplink");
        eventq().schedule(ev, arrive);
        return;
    }

    dropped_.inc();
}

NetFabric::NetFabric(Simulation &sim, std::string name,
                     Tick propagation)
    : SimObject(sim, std::move(name)), propagation_(propagation)
{
}

void
NetFabric::attach(VSwitch &sw)
{
    switches_.push_back(&sw);
    sw.setUplink([this](const Packet &pkt) { route(pkt); });
}

void
NetFabric::learn(MacAddr mac, VSwitch &sw)
{
    where_[mac] = &sw;
}

void
NetFabric::route(const Packet &pkt)
{
    auto it = where_.find(pkt.dst);
    if (it == where_.end())
        return; // no such host: silently dropped by the fabric
    VSwitch *sw = it->second;
    Packet copy = pkt;
    auto *ev = new OneShotEvent(
        [sw, copy] { sw->receiveFromUplink(copy); },
        name() + ".route");
    eventq().schedule(ev, curTick() + propagation_);
}

} // namespace cloud
} // namespace bmhive

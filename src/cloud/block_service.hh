/**
 * @file
 * Cloud block storage: the SPDK-based, SSD-backed service that
 * guests reach over the datacenter network (paper sections 3.4.2
 * and 4.3). Each guest volume has a per-volume queue; requests
 * traverse the network fabric, queue at the storage cluster, and
 * receive an SSD service time drawn from a heavy-tailed
 * distribution (flash read/program plus occasional internal GC).
 *
 * The service is platform-neutral: both bm-guests and vm-guests
 * talk to the same BlockService. The latency differences the paper
 * reports (Fig. 11) arise on the host-side path, not here.
 */

#ifndef BMHIVE_CLOUD_BLOCK_SERVICE_HH
#define BMHIVE_CLOUD_BLOCK_SERVICE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/random.hh"
#include "base/stats.hh"
#include "base/units.hh"
#include "sim/sim_object.hh"

namespace bmhive {
namespace cloud {

/** One block I/O as seen by the storage cluster. */
struct BlockIo
{
    bool write = false;
    std::uint64_t lba = 0; ///< 512-byte sector
    Bytes len = 0;
    /**
     * Completion callback. @p wire_corrupt is true when the service
     * consumed FabricCorrupt budget against this read on the
     * return leg (partitioned-mode path; the classic path always
     * passes false and the submitter claims the budget itself).
     */
    std::function<void(bool wire_corrupt)> done;
    /** Read completions may claim FabricCorrupt budget (set by
     *  integrity-enabled submitters in partitioned mode). */
    bool wantCorruption = false;
    /** Partition the completion is delivered in. */
    unsigned srcPartition = 0;
    /** Submit-side tick, for end-to-end service latency. Filled by
     *  submit(); submitArrived() expects the caller to set it. */
    Tick submittedAt = 0;
};

/**
 * A provisioned volume: capacity plus an optional content store.
 * Content is kept sparsely (only written sectors) so multi-GB
 * volumes cost nothing until used; the boot-over-virtio test uses
 * this to store a kernel image.
 */
class Volume
{
  public:
    Volume(std::string name, Bytes capacity)
        : name_(std::move(name)), capacity_(capacity) {}

    const std::string &name() const { return name_; }
    Bytes capacity() const { return capacity_; }

    /** Sparse content access, sector-addressed. */
    void writeData(std::uint64_t lba,
                   const std::vector<std::uint8_t> &data);
    std::vector<std::uint8_t> readData(std::uint64_t lba,
                                       Bytes len) const;

    /**
     * DIF protection-information side-store: @p tags holds one
     * 8-byte tag per sector written. On read, sectors without a
     * stored tag (written before integrity was on) get a tag
     * regenerated from their content.
     */
    void writeTags(std::uint64_t lba,
                   const std::vector<std::uint8_t> &tags);
    std::vector<std::uint8_t> readTags(std::uint64_t lba,
                                       Bytes payload_len) const;

  private:
    std::string name_;
    Bytes capacity_;
    /** sector -> 512-byte block, sparse. */
    std::map<std::uint64_t, std::array<std::uint8_t, 512>> blocks_;
    /** sector -> DIF tag, sparse (integrity writes only). */
    std::map<std::uint64_t, std::array<std::uint8_t, 8>> tags_;
};

/** Configuration of the storage cluster model. */
struct BlockServiceParams
{
    /** One-way network latency guest-server <-> storage. */
    Tick networkLatency = usToTicks(140);
    /** Link bandwidth to the storage cluster. */
    Bandwidth networkBandwidth = Bandwidth::gbps(100);
    /** Median 4 KiB random-read service time on the SSD. */
    Tick readServiceMedian = usToTicks(55);
    /** Median 4 KiB random-write service time (buffered). */
    Tick writeServiceMedian = usToTicks(35);
    /** Lognormal sigma of service times (tail heaviness). */
    double serviceSigma = 0.25;
    /** Probability a request lands behind an internal flash
     *  housekeeping pause (GC / wear-leveling). */
    double gcChance = 1.5e-3;
    /** Duration of such a pause. */
    Tick gcPause = msToTicks(1.2);
    /** Parallel SSD channels per volume's storage node. */
    unsigned channels = 8;
    /** Flash streaming bandwidth for large I/O (per channel). */
    Bandwidth streamBandwidth = Bandwidth::gbps(16);
};

class BlockService : public SimObject
{
  public:
    using Params = BlockServiceParams;

    BlockService(Simulation &sim, std::string name, Params params = {});
    ~BlockService() override;

    /** Create a volume of @p capacity bytes. */
    Volume &createVolume(const std::string &name, Bytes capacity);

    /**
     * Submit @p io against @p vol. The completion callback fires
     * when the data is durable (write) or available at the guest
     * server's NIC (read). Host-side costs are the caller's.
     */
    void submit(Volume &vol, BlockIo io);

    /**
     * Partitioned-mode entry: @p io has already traversed the
     * request leg (the submitter posted it across partitions with
     * requestDelay() of modelled latency) and arrives at the
     * cluster now. The completion is posted back to
     * io.srcPartition; FabricCorrupt budget for reads is claimed
     * here, deterministically in arrival order.
     */
    void submitArrived(Volume &vol, BlockIo io);

    /** Modelled guest-server -> storage request-leg latency. */
    Tick
    requestDelay(const BlockIo &io) const
    {
        Bytes to_storage = io.write ? io.len + 64 : 64;
        return params_.networkLatency +
               params_.networkBandwidth.transferTime(to_storage);
    }

    std::uint64_t completedIos() const { return completed_.value(); }
    std::uint64_t reads() const { return reads_.value(); }
    std::uint64_t writes() const { return writes_.value(); }
    /** Requests dropped by injected BlockLose faults. */
    std::uint64_t lostIos() const { return faultLost_.value(); }

    /**
     * Consume one unit of injected FabricCorrupt budget. The
     * backend calls this per read completion and flips a payload
     * byte when it returns true, modelling corruption on the
     * fabric between the storage cluster and the guest server.
     */
    bool takeCorruption();
    std::uint64_t fabricCorruptions() const
    {
        return fabricCorruptions_.value();
    }

  private:
    /** SSD service time draw shared by both submit entries; the
     *  rng call order (lognormal, then gc chance) is part of the
     *  reproducibility contract. */
    Tick drawService(const BlockIo &io);
    /** Pick the earliest-free channel and occupy it. */
    Tick occupyChannel(Tick start, Tick service);
    /** Fault hook: arm request-loss / latency-spike budgets. */
    bool injectFault(const fault::FaultSpec &spec);

    Params params_;
    std::vector<std::unique_ptr<Volume>> volumes_;
    std::vector<Tick> channelFree_;
    /** Injected-fault budgets: the next N submissions are dropped
     *  (never complete) or delayed by delayExtra_. */
    std::uint64_t loseBudget_ = 0;
    std::uint64_t delayBudget_ = 0;
    std::uint64_t corruptBudget_ = 0;
    Tick delayExtra_ = 0;
    /** Registry-backed: accessors and exports read the same cell. */
    Counter &completed_;
    Counter &reads_;
    Counter &writes_;
    Counter &faultLost_;
    Counter &faultDelayed_;
    Counter &fabricCorruptions_;
    /** Cluster-side latency (submit to completion callback). */
    LatencyRecorder &serviceLatency_;
};

} // namespace cloud
} // namespace bmhive

#endif // BMHIVE_CLOUD_BLOCK_SERVICE_HH

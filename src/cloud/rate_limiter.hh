/**
 * @file
 * Composite rate limiters matching the cloud's per-instance limits
 * (paper section 4.1): network limited in packets/s AND bits/s,
 * storage limited in IOPS AND bytes/s. A request must obtain
 * tokens from both buckets; the pacing delay is the later of the
 * two. Limits can be lifted (paper section 4.3 "unrestricted"
 * experiments).
 */

#ifndef BMHIVE_CLOUD_RATE_LIMITER_HH
#define BMHIVE_CLOUD_RATE_LIMITER_HH

#include "base/token_bucket.hh"
#include "base/units.hh"

namespace bmhive {
namespace cloud {

/**
 * Two-dimensional token-bucket limiter: operations/s plus bytes/s.
 */
class DualRateLimiter
{
  public:
    /**
     * @param ops_per_sec   0 = unlimited
     * @param bytes_per_sec 0 = unlimited
     * @param burst_ops     bucket depth in operations
     * @param burst_bytes   bucket depth in bytes
     */
    DualRateLimiter(double ops_per_sec, double bytes_per_sec,
                    double burst_ops, double burst_bytes)
        : ops_(ops_per_sec, burst_ops),
          bytes_(bytes_per_sec, burst_bytes) {}

    static DualRateLimiter
    unlimited()
    {
        return DualRateLimiter(0, 0, 0, 0);
    }

    /**
     * Earliest tick at which one operation of @p len bytes may
     * proceed; consumes the tokens (pacing semantics: the caller
     * must delay the operation until the returned tick).
     */
    Tick
    admit(Tick now, Bytes len)
    {
        Tick t_ops = ops_.nextAvailable(now, 1.0);
        Tick t_bytes = bytes_.nextAvailable(now, double(len));
        Tick t = t_ops > t_bytes ? t_ops : t_bytes;
        ops_.forceConsume(t, 1.0);
        bytes_.forceConsume(t, double(len));
        return t;
    }

    bool limited() const { return ops_.limited() || bytes_.limited(); }
    double opsPerSec() const { return ops_.rate(); }
    double bytesPerSec() const { return bytes_.rate(); }

  private:
    TokenBucket ops_;
    TokenBucket bytes_;
};

/** The paper's published instance limits (section 4.1 / 4.3). */
struct InstanceLimits
{
    /** Network: 4M PPS, 10 Gbit/s. */
    static DualRateLimiter
    cloudNetwork()
    {
        return DualRateLimiter(4.0e6, 10e9 / 8.0, 8.0e3, 1.25e6);
    }

    /** Storage: 25K IOPS, 300 MB/s. */
    static DualRateLimiter
    cloudStorage()
    {
        return DualRateLimiter(25e3, 300e6, 256, 4.0e6);
    }
};

} // namespace cloud
} // namespace bmhive

#endif // BMHIVE_CLOUD_RATE_LIMITER_HH

/**
 * @file
 * Network packet representation used across the cloud substrate.
 *
 * Payload bytes are not carried — only sizes and timestamps — but
 * the I/O path that moves a packet (vrings, IO-Bond DMA, vSwitch)
 * is fully modelled, so a Packet's latency reflects every hop the
 * paper describes.
 */

#ifndef BMHIVE_CLOUD_PACKET_HH
#define BMHIVE_CLOUD_PACKET_HH

#include <cstdint>

#include "base/units.hh"

namespace bmhive {
namespace cloud {

/** Flat L2 address; the vSwitch forwards on these. */
using MacAddr = std::uint64_t;

/** Minimal UDP-over-Ethernet frame sizes used by the workloads. */
constexpr Bytes ethHeaderBytes = 14;
constexpr Bytes ipUdpHeaderBytes = 28;
constexpr Bytes minFrameBytes = 64;

/** Frame length of a UDP datagram with @p payload bytes of data. */
constexpr Bytes
udpFrameBytes(Bytes payload)
{
    Bytes b = ethHeaderBytes + ipUdpHeaderBytes + payload;
    return b < minFrameBytes ? minFrameBytes : b;
}

struct Packet
{
    MacAddr src = 0;
    MacAddr dst = 0;
    Bytes len = 0;       ///< frame length on the wire
    Tick created = 0;    ///< when the sender formed the packet
    std::uint64_t seq = 0; ///< sender-assigned sequence number
};

} // namespace cloud
} // namespace bmhive

#endif // BMHIVE_CLOUD_PACKET_HH

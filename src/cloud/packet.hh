/**
 * @file
 * Network packet representation used across the cloud substrate.
 *
 * Payload bytes are not carried — only sizes and timestamps — but
 * the I/O path that moves a packet (vrings, IO-Bond DMA, vSwitch)
 * is fully modelled, so a Packet's latency reflects every hop the
 * paper describes.
 */

#ifndef BMHIVE_CLOUD_PACKET_HH
#define BMHIVE_CLOUD_PACKET_HH

#include <cstdint>

#include "base/checksum.hh"
#include "base/units.hh"

namespace bmhive {
namespace cloud {

/** Flat L2 address; the vSwitch forwards on these. */
using MacAddr = std::uint64_t;

/** Minimal UDP-over-Ethernet frame sizes used by the workloads. */
constexpr Bytes ethHeaderBytes = 14;
constexpr Bytes ipUdpHeaderBytes = 28;
constexpr Bytes minFrameBytes = 64;

/** Frame length of a UDP datagram with @p payload bytes of data. */
constexpr Bytes
udpFrameBytes(Bytes payload)
{
    Bytes b = ethHeaderBytes + ipUdpHeaderBytes + payload;
    return b < minFrameBytes ? minFrameBytes : b;
}

struct Packet
{
    MacAddr src = 0;
    MacAddr dst = 0;
    Bytes len = 0;       ///< frame length on the wire
    Tick created = 0;    ///< when the sender formed the packet
    std::uint64_t seq = 0; ///< sender-assigned sequence number
    /** Flow identity (the UDP port pair of the modelled frame).
     *  RSS hashes over (src, dst, flow) so one sender can spread
     *  distinct flows across a multi-queue NIC's rx queues. */
    std::uint32_t flow = 0;
    /** Frame checksum sealed by the sending driver; every fabric
     *  stage re-verifies it (integrity layer). 0 = unsealed. */
    std::uint32_t csum = 0;
};

/** CRC32C over the frame's invariant fields — what the FCS of the
 *  modelled frame would cover. The csum field itself is excluded. */
inline std::uint32_t
packetCsum(const Packet &p)
{
    std::uint32_t c = crc32cWord(p.src);
    c = crc32cWord(p.dst, c);
    c = crc32cWord(p.len, c);
    c = crc32cWord(p.created, c);
    c = crc32cWord(p.seq, c);
    c = crc32cWord(std::uint64_t(p.flow), c);
    return c;
}

/** Seal @p p (compute and store its checksum). */
inline void
sealPacket(Packet &p)
{
    p.csum = packetCsum(p);
}

/**
 * True unless the frame is provably corrupt. csum == 0 marks an
 * unsealed frame from a legacy sender (hand-built test packets,
 * vm-guest stacks) and passes unchecked; the bm-guest driver seals
 * every frame it transmits, so the whole bm datapath is covered.
 */
inline bool
packetCsumOk(const Packet &p)
{
    return p.csum == 0 || p.csum == packetCsum(p);
}

} // namespace cloud
} // namespace bmhive

#endif // BMHIVE_CLOUD_PACKET_HH

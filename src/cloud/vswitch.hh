/**
 * @file
 * Poll-mode virtual switch, modelling the customized DPDK vSwitch
 * the bm-hypervisor back-end forwards packets to (paper section
 * 3.4.2). Each guest's backend attaches as a port; the switch
 * forwards frames by MAC with a per-packet processing cost
 * (poll-mode driver, no interrupts) and serializes on its core
 * budget. Unknown MACs go to the uplink (the server's shared
 * 100 Gbit/s NIC toward the fabric).
 */

#ifndef BMHIVE_CLOUD_VSWITCH_HH
#define BMHIVE_CLOUD_VSWITCH_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "base/units.hh"
#include "cloud/packet.hh"
#include "mq/rss.hh"
#include "sim/sim_object.hh"

namespace bmhive {
namespace cloud {

using PortId = std::uint32_t;

/** Receives a packet delivered to a port. */
using PacketHandler = std::function<void(const Packet &)>;

/** Receives a packet RSS-steered onto a specific rx queue. */
using QueuedPacketHandler =
    std::function<void(const Packet &, unsigned)>;

/** Configuration of a VSwitch. */
struct VSwitchParams
{
    /** CPU cost to switch one packet (DPDK PMD, ~50 ns). */
    Tick perPacketCost = nsToTicks(50);
    /** Port link bandwidth toward a local backend. */
    Bandwidth portBandwidth = Bandwidth::gbps(50);
    /** Uplink NIC bandwidth (shared 100 Gbit/s interface). */
    Bandwidth uplinkBandwidth = Bandwidth::gbps(100);
};

class VSwitch : public SimObject
{
  public:
    using Params = VSwitchParams;

    VSwitch(Simulation &sim, std::string name, Params params = {});
    ~VSwitch() override;

    /**
     * Attach a port for @p mac; @p rx is invoked for every frame
     * delivered to it.
     */
    PortId addPort(MacAddr mac, PacketHandler rx);

    /**
     * Detach a port: its MAC is forgotten (and may be re-learned
     * by a new port) and frames already queued to it are dropped.
     */
    void removePort(PortId id);

    /**
     * Inject a frame from a local port. Forwards to the owning
     * port of @p pkt.dst, or to the uplink if the MAC is remote.
     */
    void send(PortId from, const Packet &pkt);

    /** Deliver a frame arriving from the fabric uplink. */
    void receiveFromUplink(const Packet &pkt);

    /**
     * Connect the uplink (frames with non-local dst go here).
     * @p uplinkPartition is the partition the uplink handler runs
     * in (the fabric's); in a partitioned simulation a cross-
     * partition uplink send goes through the mailbox API with the
     * NIC-egress PCIe hop as its minimum delay.
     */
    void
    setUplink(std::function<void(const Packet &)> uplink,
              unsigned uplinkPartition = 0)
    {
        uplink_ = std::move(uplink);
        uplinkPartition_ = uplinkPartition;
    }

    /**
     * Stall a port: frames destined to it buffer (bounded; overflow
     * drops) until @p duration elapses, then flush in order. Models
     * a wedged backend PMD / paused guest.
     */
    void stallPort(PortId id, Tick duration);

    /**
     * Enable RSS steering on a port (VIRTIO_NET_F_MQ receiver):
     * frames are hashed over (src, dst, flow) through a per-port
     * indirection table and handed to @p rxq with the selected rx
     * queue. The plain handler from addPort stays as the fallback
     * while @p rxq is unset. The keyed hash is deterministic, so
     * a flow's packets always land on the same queue and the
     * same seed steers identically (byte-identical metrics gate).
     */
    void setPortRss(PortId id, unsigned queues,
                    QueuedPacketHandler rxq,
                    std::uint64_t key = mq::defaultRssKey);

    /**
     * Re-spread the indirection table over @p queues (the guest
     * wrote set-queue-pairs). No-op for ports without RSS.
     */
    void setPortRssQueues(PortId id, unsigned queues);

    /** Active rx queues a port steers over (1 = no RSS). */
    unsigned portRssQueues(PortId id) const;

    std::uint64_t forwarded() const { return forwarded_.value(); }
    std::uint64_t dropped() const { return dropped_.value(); }
    std::uint64_t uplinkTx() const { return uplinkTx_.value(); }
    std::uint64_t bytesSwitched() const { return bytes_.value(); }

    /**
     * Frame-checksum verification at switch ingress (the FCS check
     * real switch silicon performs): a sealed frame that fails its
     * checksum is dropped and counted, never forwarded. Unsealed
     * frames (csum 0, legacy senders) pass unchecked.
     */
    void setIntegrity(bool on) { integrity_ = on; }
    bool integrityEnabled() const { return integrity_; }

    std::uint64_t frameDrops() const { return frameDrops_.value(); }
    std::uint64_t fabricCorruptions() const
    {
        return fabricCorruptions_.value();
    }

  private:
    struct Port
    {
        MacAddr mac;
        PacketHandler rx;
        /** RSS receiver; when set it takes over from rx. */
        QueuedPacketHandler rxq;
        mq::RssTable rss{1};
        Tick linkFree = 0;   ///< when the port link is next idle
        Tick stallUntil = 0; ///< injected stall deadline
        std::deque<Packet> stalled;
    };

    /** Stalled frames held per port before overflow drops. */
    static constexpr std::size_t stallBufferCap = 4096;

    /** Serialize on the switch core, then deliver. */
    void forward(const Packet &pkt);
    /** Serialize @p pkt on port @p pid's link and deliver it. */
    void deliverTo(PortId pid, const Packet &pkt, Tick ready);
    /** Stall expired: replay the buffered frames in order. */
    void flushPort(PortId id);
    /** Fault hook: PortStall with magnitude = port id. */
    bool injectFault(const fault::FaultSpec &spec);

    Params params_;
    std::vector<Port> ports_;
    std::map<MacAddr, PortId> macTable_;
    std::function<void(const Packet &)> uplink_;
    unsigned uplinkPartition_ = 0;
    Tick coreFree_ = 0;   ///< when the switching core is next idle
    Tick uplinkFree_ = 0; ///< when the uplink NIC is next idle
    bool integrity_ = true;
    /** Injected FabricCorrupt budget: the next N frames entering
     *  the switch have a metadata field flipped on the wire. */
    std::uint64_t corruptBudget_ = 0;
    /** Registry-backed: accessors and exports read the same cell. */
    Counter &forwarded_;
    Counter &dropped_;
    Counter &uplinkTx_;
    Counter &bytes_;
    Counter &faultInjected_;
    Counter &faultRecovered_;
    Counter &framesChecked_;
    Counter &frameDrops_;
    Counter &fabricCorruptions_;
};

/**
 * The datacenter network between servers: connects VSwitch uplinks
 * with a propagation delay and routes by MAC.
 */
class NetFabric : public SimObject
{
  public:
    explicit NetFabric(Simulation &sim, std::string name,
                       Tick propagation = usToTicks(5));

    /** Register @p sw and the MACs living behind it. */
    void attach(VSwitch &sw);

    /** Called by a switch's uplink for non-local frames. */
    void route(const Packet &pkt);

    /** Record that @p mac lives behind @p sw (called by addPort). */
    void learn(MacAddr mac, VSwitch &sw);

  private:
    Tick propagation_;
    std::map<MacAddr, VSwitch *> where_;
    std::vector<VSwitch *> switches_;
};

} // namespace cloud
} // namespace bmhive

#endif // BMHIVE_CLOUD_VSWITCH_HH

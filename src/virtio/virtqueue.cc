#include "virtio/virtqueue.hh"

#include "base/logging.hh"

namespace bmhive {
namespace virtio {

std::uint32_t
DescChain::readLen() const
{
    std::uint32_t n = 0;
    for (const auto &s : segs)
        if (!s.deviceWrites)
            n += s.len;
    return n;
}

std::uint32_t
DescChain::writeLen() const
{
    std::uint32_t n = 0;
    for (const auto &s : segs)
        if (s.deviceWrites)
            n += s.len;
    return n;
}

VirtQueueDriver::VirtQueueDriver(GuestMemory &mem,
                                 const VringLayout &layout,
                                 bool indirect, Addr indirect_base,
                                 bool event_idx)
    : mem_(mem), layout_(layout), indirect_(indirect),
      indirectBase_(indirect_base), eventIdx_(event_idx),
      cookies_(layout.size(), 0), chainLen_(layout.size(), 0)
{
    panic_if(!layout.valid(), "driver created on an invalid ring");
    freeList_.reserve(layout.size());
    // Populate the free list high-to-low so allocation starts at 0.
    for (int i = layout.size() - 1; i >= 0; --i)
        freeList_.push_back(std::uint16_t(i));
    // Initialize ring indices.
    layout_.setAvailFlags(mem_, 0);
    layout_.setAvailIdx(mem_, 0);
    layout_.setUsedFlags(mem_, 0);
    layout_.setUsedIdx(mem_, 0);
}

Addr
VirtQueueDriver::indirectTable(std::uint16_t head) const
{
    return indirectBase_ +
           Addr(head) * Addr(maxIndirect) * vringDescSize;
}

std::optional<std::uint16_t>
VirtQueueDriver::submit(const std::vector<Segment> &out,
                        const std::vector<Segment> &in,
                        std::uint64_t cookie)
{
    std::size_t total = out.size() + in.size();
    panic_if(total == 0, "empty virtio request");

    bool use_indirect = indirect_ && total > 1;
    std::size_t direct_needed = use_indirect ? 1 : total;
    if (freeList_.size() < direct_needed)
        return std::nullopt;
    if (use_indirect && total > maxIndirect)
        return std::nullopt;

    // Allocate descriptors from the free list.
    std::vector<std::uint16_t> ids(direct_needed);
    for (auto &id : ids) {
        id = freeList_.back();
        freeList_.pop_back();
    }
    std::uint16_t head = ids[0];
    cookies_[head] = cookie;
    chainLen_[head] = std::uint16_t(direct_needed);

    if (use_indirect) {
        // Write the indirect table into this head's private area.
        Addr table = indirectTable(head);
        std::uint16_t n = std::uint16_t(total);
        for (std::uint16_t i = 0; i < n; ++i) {
            const Segment &s = i < out.size()
                                   ? out[i]
                                   : in[i - out.size()];
            VringDesc d;
            d.addr = s.addr;
            d.len = s.len;
            d.flags = std::uint16_t(
                (s.deviceWrites ? VRING_DESC_F_WRITE : 0) |
                (i + 1 < n ? VRING_DESC_F_NEXT : 0));
            d.next = std::uint16_t(i + 1 < n ? i + 1 : 0);
            Addr a = table + Addr(i) * vringDescSize;
            mem_.write64(a, d.addr);
            mem_.write32(a + 8, d.len);
            mem_.write16(a + 12, d.flags);
            mem_.write16(a + 14, d.next);
        }
        VringDesc d;
        d.addr = table;
        d.len = std::uint32_t(n) * std::uint32_t(vringDescSize);
        d.flags = VRING_DESC_F_INDIRECT;
        d.next = 0;
        layout_.writeDesc(mem_, head, d);
    } else {
        for (std::size_t i = 0; i < total; ++i) {
            const Segment &s = i < out.size()
                                   ? out[i]
                                   : in[i - out.size()];
            VringDesc d;
            d.addr = s.addr;
            d.len = s.len;
            d.flags = std::uint16_t(
                (s.deviceWrites ? VRING_DESC_F_WRITE : 0) |
                (i + 1 < total ? VRING_DESC_F_NEXT : 0));
            d.next = std::uint16_t(i + 1 < total ? ids[i + 1] : 0);
            layout_.writeDesc(mem_, ids[i], d);
        }
    }

    // Publish on the available ring; idx wraps naturally at 2^16.
    layout_.setAvailRing(mem_, availIdx_ % layout_.size(), head);
    ++availIdx_;
    layout_.setAvailIdx(mem_, availIdx_);
    return head;
}

bool
VirtQueueDriver::freeChain(std::uint16_t head)
{
    if (chainLen_[head] == 0) {
        // The device completed a head we never submitted (or
        // completed one twice). Linux virtio treats this as a
        // BAD_RING condition and carries on; so do we.
        warn("virtqueue: device returned unowned head ", head);
        return false;
    }
    // Walk the direct chain to recover all ids. The descriptor
    // table lives in ring memory, so the next pointers may have
    // been scribbled since submission; a corrupted link must not
    // index outside the table (Linux virtio's BAD_RING stance).
    std::uint16_t id = head;
    std::uint16_t remaining = chainLen_[head];
    chainLen_[head] = 0;
    while (remaining-- > 0) {
        freeList_.push_back(id);
        VringDesc d = layout_.readDesc(mem_, id);
        if (!(d.flags & VRING_DESC_F_NEXT))
            break;
        if (d.next >= layout_.size()) {
            warn("virtqueue: corrupted chain link ", d.next,
                 " from desc ", id);
            if (metaFaults_)
                metaFaults_->inc();
            break;
        }
        id = d.next;
    }
    return true;
}

std::vector<UsedCompletion>
VirtQueueDriver::collectUsed()
{
    std::vector<UsedCompletion> done;
    std::uint16_t used_idx = layout_.usedIdx(mem_);
    if (eventIdx_ && lastUsed_ != used_idx) {
        // Re-arm: interrupt us once anything beyond used_idx lands.
        layout_.setUsedEvent(mem_, used_idx);
    }
    while (lastUsed_ != used_idx) {
        VringUsedElem e =
            layout_.usedRing(mem_, lastUsed_ % layout_.size());
        ++lastUsed_;
        if (e.id >= layout_.size()) {
            warn("virtqueue: device returned bad used id ", e.id);
            continue;
        }
        auto head = std::uint16_t(e.id);
        if (!freeChain(head))
            continue;
        done.push_back({head, e.len, cookies_[head]});
    }
    return done;
}

bool
VirtQueueDriver::deviceWantsKick() const
{
    if (eventIdx_) {
        return vringNeedEvent(layout_.availEvent(mem_), availIdx_,
                              lastKickAvail_);
    }
    return !(layout_.usedFlags(mem_) & VRING_USED_F_NO_NOTIFY);
}

bool
VirtQueueDriver::shouldKick()
{
    bool need = deviceWantsKick();
    if (eventIdx_)
        lastKickAvail_ = availIdx_;
    return need;
}

void
VirtQueueDriver::setNoInterrupt(bool suppress)
{
    if (eventIdx_) {
        // Suppress by parking used_event half a ring away; enable
        // by asking for the very next completion.
        layout_.setUsedEvent(
            mem_, suppress ? std::uint16_t(lastUsed_ + 0x8000)
                           : lastUsed_);
        return;
    }
    layout_.setAvailFlags(mem_,
                          suppress ? VRING_AVAIL_F_NO_INTERRUPT : 0);
}

VirtQueueDevice::VirtQueueDevice(GuestMemory &mem,
                                 const VringLayout &layout,
                                 bool event_idx)
    : mem_(mem), layout_(layout), eventIdx_(event_idx)
{
    panic_if(!layout.valid(), "device created on an invalid ring");
    // Resume from what the ring says rather than assuming zero: a
    // device view attached over a live ring (backend respawn after
    // a crash) must continue where its predecessor stopped. The
    // republished avail window starts at the used index. Fresh
    // rings are zeroed by their creator, so this is 0 for them.
    usedIdx_ = layout_.usedIdx(mem_);
    lastAvail_ = usedIdx_;
    lastIntrUsed_ = usedIdx_;
}

bool
VirtQueueDevice::hasWork() const
{
    return layout_.availIdx(mem_) != lastAvail_;
}

ChainWalk
walkDescChain(const GuestMemory &mem, const VringLayout &layout,
              std::uint16_t head)
{
    using fault::GuestFaultKind;
    ChainWalk w;
    w.chain.head = head;

    auto fail = [&w](GuestFaultKind k) -> ChainWalk & {
        w.fault = k;
        return w;
    };
    // Every buffer segment — direct or from an indirect table — is
    // attacker-controlled: the address must fall inside guest
    // memory (with overflow checked), the length must be non-zero,
    // and device-readable segments must precede device-writable
    // ones (virtio 1.0 section 2.4.4.2).
    bool seen_write = false;
    auto check_seg = [&](const VringDesc &d,
                         GuestFaultKind &k) -> bool {
        if (d.len == 0) {
            k = GuestFaultKind::DescLenZero;
            return false;
        }
        if (d.addr + d.len < d.addr ||
            d.addr + d.len > mem.size()) {
            k = GuestFaultKind::DescAddrRange;
            return false;
        }
        bool write = d.flags & VRING_DESC_F_WRITE;
        if (!write && seen_write) {
            k = GuestFaultKind::DescWriteOrder;
            return false;
        }
        seen_write = seen_write || write;
        return true;
    };

    std::uint16_t id = head;
    unsigned steps = 0;
    while (true) {
        if (id >= layout.size())
            return fail(GuestFaultKind::DescIndexRange);
        if (++steps > layout.size())
            return fail(GuestFaultKind::DescLoop);
        VringDesc d = layout.readDesc(mem, id);
        w.path.push_back(id);

        if (d.flags & VRING_DESC_F_INDIRECT) {
            // Indirect must be the sole descriptor (spec: a driver
            // MUST NOT set both INDIRECT and NEXT) and well-formed.
            if (d.flags & VRING_DESC_F_NEXT)
                return fail(GuestFaultKind::IndirectMalformed);
            if (steps != 1)
                return fail(GuestFaultKind::IndirectMalformed);
            if (d.len == 0 || d.len % vringDescSize != 0)
                return fail(GuestFaultKind::IndirectMalformed);
            auto n =
                std::uint16_t(d.len / std::uint32_t(vringDescSize));
            if (d.addr + d.len < d.addr ||
                d.addr + d.len > mem.size())
                return fail(GuestFaultKind::IndirectMalformed);
            w.indirect = true;
            w.indirectAddr = d.addr;
            // Follow the table's next pointers with the same
            // containment as the direct walk: a hostile guest can
            // write a self-referencing or cyclic table, and the
            // step bound is what keeps the walk finite.
            std::uint16_t idx = 0;
            unsigned ind_steps = 0;
            while (true) {
                if (idx >= n)
                    // next points outside the table
                    return fail(GuestFaultKind::IndirectMalformed);
                if (++ind_steps > n)
                    // cyclic indirect table
                    return fail(GuestFaultKind::DescLoop);
                Addr a = d.addr + Addr(idx) * vringDescSize;
                VringDesc ind;
                ind.addr = mem.read64(a);
                ind.len = mem.read32(a + 8);
                ind.flags = mem.read16(a + 12);
                ind.next = mem.read16(a + 14);
                if (ind.flags & VRING_DESC_F_INDIRECT)
                    // nesting forbidden by the spec
                    return fail(GuestFaultKind::IndirectMalformed);
                GuestFaultKind k;
                if (!check_seg(ind, k))
                    return fail(k);
                w.chain.segs.push_back(
                    {ind.addr, ind.len,
                     bool(ind.flags & VRING_DESC_F_WRITE)});
                ++w.indirectCount;
                if (!(ind.flags & VRING_DESC_F_NEXT))
                    break;
                idx = ind.next;
            }
            w.ok = true;
            return w;
        }

        GuestFaultKind k;
        if (!check_seg(d, k))
            return fail(k);
        w.chain.segs.push_back(
            {d.addr, d.len, bool(d.flags & VRING_DESC_F_WRITE)});

        if (!(d.flags & VRING_DESC_F_NEXT)) {
            w.ok = true;
            return w;
        }
        id = d.next;
    }
}

std::optional<DescChain>
VirtQueueDevice::pop()
{
    if (!hasWork())
        return std::nullopt;
    std::uint16_t head =
        layout_.availRing(mem_, lastAvail_ % layout_.size());
    ++lastAvail_;

    ChainWalk w = walkDescChain(mem_, layout_, head);
    if (!w.ok) {
        badChains_.inc();
        // Complete the bad chain with zero length so the driver's
        // descriptors are not leaked, then drop it.
        if (head < layout_.size())
            pushUsed(head, 0);
        return std::nullopt;
    }
    popped_.inc();
    if (eventIdx_ && !notifySuppressed_) {
        // Re-arm: kick us once anything beyond lastAvail_ appears.
        layout_.setAvailEvent(mem_, lastAvail_);
    }
    return w.chain;
}

std::vector<DescChain>
VirtQueueDevice::popBatch(unsigned max)
{
    std::vector<DescChain> out;
    unsigned consumed = 0;
    while (out.size() < max && hasWork()) {
        std::uint16_t head =
            layout_.availRing(mem_, lastAvail_ % layout_.size());
        ++lastAvail_;
        ++consumed;
        ChainWalk w = walkDescChain(mem_, layout_, head);
        if (!w.ok) {
            badChains_.inc();
            if (head < layout_.size())
                pushUsed(head, 0);
            continue;
        }
        popped_.inc();
        out.push_back(std::move(w.chain));
    }
    if (consumed > 0 && eventIdx_ && !notifySuppressed_) {
        // One re-arm covers the whole drain: kick us once anything
        // beyond lastAvail_ appears.
        layout_.setAvailEvent(mem_, lastAvail_);
    }
    return out;
}

void
VirtQueueDevice::pushUsed(std::uint16_t head, std::uint32_t written)
{
    layout_.setUsedRing(mem_, usedIdx_ % layout_.size(),
                        VringUsedElem{head, written});
    ++usedIdx_;
    layout_.setUsedIdx(mem_, usedIdx_);
}

void
VirtQueueDevice::pushUsedBatch(const std::vector<VringUsedElem> &elems)
{
    if (elems.empty())
        return;
    for (const auto &e : elems) {
        layout_.setUsedRing(mem_, usedIdx_ % layout_.size(), e);
        ++usedIdx_;
    }
    layout_.setUsedIdx(mem_, usedIdx_);
}

bool
VirtQueueDevice::driverWantsInterrupt() const
{
    if (eventIdx_) {
        return vringNeedEvent(layout_.usedEvent(mem_), usedIdx_,
                              lastIntrUsed_);
    }
    return !(layout_.availFlags(mem_) & VRING_AVAIL_F_NO_INTERRUPT);
}

bool
VirtQueueDevice::shouldInterrupt()
{
    bool need = driverWantsInterrupt();
    if (eventIdx_)
        lastIntrUsed_ = usedIdx_;
    return need;
}

void
VirtQueueDevice::setNoNotify(bool suppress)
{
    notifySuppressed_ = suppress;
    if (eventIdx_) {
        layout_.setAvailEvent(
            mem_, suppress ? std::uint16_t(lastAvail_ + 0x8000)
                           : lastAvail_);
        return;
    }
    layout_.setUsedFlags(mem_,
                         suppress ? VRING_USED_F_NO_NOTIFY : 0);
}

} // namespace virtio
} // namespace bmhive

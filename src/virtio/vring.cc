#include "virtio/vring.hh"

#include "base/logging.hh"

namespace bmhive {
namespace virtio {

namespace {

constexpr Addr
alignUp(Addr a, Addr align)
{
    return (a + align - 1) & ~(align - 1);
}

} // namespace

VringLayout
VringLayout::contiguous(std::uint16_t size, Addr base)
{
    panic_if(size == 0 || (size & (size - 1)) != 0,
             "vring size must be a power of two, got ", size);
    Addr desc = alignUp(base, 16);
    Addr avail = alignUp(desc + Bytes(size) * vringDescSize, 2);
    // avail: flags + idx + ring[size] + used_event
    Addr used = alignUp(avail + 4 + 2 * Bytes(size) + 2, 4);
    return VringLayout(size, desc, avail, used);
}

Bytes
VringLayout::bytesNeeded(std::uint16_t size)
{
    VringLayout l = contiguous(size, 0);
    return l.usedAddr() + l.usedBytes();
}

bool
VringLayout::fitsIn(Bytes mem_size) const
{
    auto area_ok = [mem_size](Addr base, Bytes len) {
        return base + len >= base && base + len <= mem_size;
    };
    return valid() && area_ok(desc_, descBytes()) &&
           area_ok(avail_, availBytes()) &&
           area_ok(used_, usedBytes());
}

VringDesc
VringLayout::readDesc(const GuestMemory &m, std::uint16_t i) const
{
    panic_if(i >= size_, "descriptor index out of range: ", i);
    Addr a = desc_ + Addr(i) * vringDescSize;
    VringDesc d;
    d.addr = m.read64(a);
    d.len = m.read32(a + 8);
    d.flags = m.read16(a + 12);
    d.next = m.read16(a + 14);
    return d;
}

void
VringLayout::writeDesc(GuestMemory &m, std::uint16_t i,
                       const VringDesc &d) const
{
    panic_if(i >= size_, "descriptor index out of range: ", i);
    Addr a = desc_ + Addr(i) * vringDescSize;
    m.write64(a, d.addr);
    m.write32(a + 8, d.len);
    m.write16(a + 12, d.flags);
    m.write16(a + 14, d.next);
}

std::uint16_t
VringLayout::availFlags(const GuestMemory &m) const
{
    return m.read16(avail_);
}

std::uint16_t
VringLayout::availIdx(const GuestMemory &m) const
{
    return m.read16(avail_ + 2);
}

std::uint16_t
VringLayout::availRing(const GuestMemory &m, std::uint16_t slot) const
{
    panic_if(slot >= size_, "avail slot out of range: ", slot);
    return m.read16(avail_ + 4 + 2 * Addr(slot));
}

void
VringLayout::setAvailFlags(GuestMemory &m, std::uint16_t v) const
{
    m.write16(avail_, v);
}

void
VringLayout::setAvailIdx(GuestMemory &m, std::uint16_t v) const
{
    m.write16(avail_ + 2, v);
}

void
VringLayout::setAvailRing(GuestMemory &m, std::uint16_t slot,
                          std::uint16_t v) const
{
    panic_if(slot >= size_, "avail slot out of range: ", slot);
    m.write16(avail_ + 4 + 2 * Addr(slot), v);
}

std::uint16_t
VringLayout::usedEvent(const GuestMemory &m) const
{
    return m.read16(avail_ + 4 + 2 * Addr(size_));
}

void
VringLayout::setUsedEvent(GuestMemory &m, std::uint16_t v) const
{
    m.write16(avail_ + 4 + 2 * Addr(size_), v);
}

std::uint16_t
VringLayout::usedFlags(const GuestMemory &m) const
{
    return m.read16(used_);
}

std::uint16_t
VringLayout::usedIdx(const GuestMemory &m) const
{
    return m.read16(used_ + 2);
}

VringUsedElem
VringLayout::usedRing(const GuestMemory &m, std::uint16_t slot) const
{
    panic_if(slot >= size_, "used slot out of range: ", slot);
    Addr a = used_ + 4 + 8 * Addr(slot);
    VringUsedElem e;
    e.id = m.read32(a);
    e.len = m.read32(a + 4);
    return e;
}

void
VringLayout::setUsedFlags(GuestMemory &m, std::uint16_t v) const
{
    m.write16(used_, v);
}

void
VringLayout::setUsedIdx(GuestMemory &m, std::uint16_t v) const
{
    m.write16(used_ + 2, v);
}

void
VringLayout::setUsedRing(GuestMemory &m, std::uint16_t slot,
                         const VringUsedElem &e) const
{
    panic_if(slot >= size_, "used slot out of range: ", slot);
    Addr a = used_ + 4 + 8 * Addr(slot);
    m.write32(a, e.id);
    m.write32(a + 4, e.len);
}

std::uint16_t
VringLayout::availEvent(const GuestMemory &m) const
{
    return m.read16(used_ + 4 + 8 * Addr(size_));
}

void
VringLayout::setAvailEvent(GuestMemory &m, std::uint16_t v) const
{
    m.write16(used_ + 4 + 8 * Addr(size_), v);
}

} // namespace virtio
} // namespace bmhive

/**
 * @file
 * Virtio-over-PCI transport (virtio 1.0 "modern" interface).
 *
 * VirtioPciDevice is a PciDevice exposing the standard virtio
 * common configuration structure in BAR0, the notify region and ISR
 * in BAR0 at fixed offsets, and device-specific config after them.
 * The guest driver programs queue addresses here; subclasses (the
 * IO-Bond front-end function, the KVM-baseline virtio device)
 * receive onQueueNotify()/onDriverOk() hooks.
 *
 * Register layout inside BAR0:
 *   0x0000  common config (virtio 1.0 section 4.1.4.3 layout)
 *   0x1000  queue notify (one 4-byte doorbell, value = queue index)
 *   0x2000  ISR status (read to ack)
 *   0x3000  device-specific config
 */

#ifndef BMHIVE_VIRTIO_VIRTIO_PCI_HH
#define BMHIVE_VIRTIO_VIRTIO_PCI_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/guest_fault.hh"
#include "pci/pci_device.hh"
#include "virtio/vring.hh"

namespace bmhive {
namespace virtio {

/** Virtio device types (virtio 1.0 section 5). */
enum class DeviceType : std::uint16_t {
    Net = 1,
    Block = 2,
    Console = 3,
};

/** Device status bits (virtio 1.0 section 2.1). */
enum StatusBits : std::uint8_t {
    STATUS_ACKNOWLEDGE = 1,
    STATUS_DRIVER = 2,
    STATUS_DRIVER_OK = 4,
    STATUS_FEATURES_OK = 8,
    STATUS_NEEDS_RESET = 64,
    STATUS_FAILED = 128,
};

/** Feature bits used by the model. */
enum FeatureBits : std::uint64_t {
    VIRTIO_RING_F_INDIRECT_DESC = 1ull << 28,
    VIRTIO_RING_F_EVENT_IDX = 1ull << 29,
    VIRTIO_F_VERSION_1 = 1ull << 32,
};

/** Common-config register offsets within BAR0. */
enum CommonCfg : Addr {
    COMMON_DFSELECT = 0x00,
    COMMON_DF = 0x04,
    COMMON_GFSELECT = 0x08,
    COMMON_GF = 0x0c,
    COMMON_MSIX_CONFIG = 0x10,
    COMMON_NUMQ = 0x12,
    COMMON_STATUS = 0x14,
    COMMON_CFGGEN = 0x15,
    COMMON_Q_SELECT = 0x16,
    COMMON_Q_SIZE = 0x18,
    COMMON_Q_MSIX = 0x1a,
    COMMON_Q_ENABLE = 0x1c,
    COMMON_Q_NOFF = 0x1e,
    COMMON_Q_DESCLO = 0x20,
    COMMON_Q_DESCHI = 0x24,
    COMMON_Q_AVAILLO = 0x28,
    COMMON_Q_AVAILHI = 0x2c,
    COMMON_Q_USEDLO = 0x30,
    COMMON_Q_USEDHI = 0x34,
};

constexpr Addr notifyRegionOffset = 0x1000;
constexpr Addr isrOffset = 0x2000;
constexpr Addr deviceCfgOffset = 0x3000;

/** PCI vendor/device IDs: the virtio 1.0 "modern" ID space. */
constexpr std::uint16_t virtioVendorId = 0x1af4;
constexpr std::uint16_t
virtioDeviceId(DeviceType t)
{
    return std::uint16_t(0x1040 + std::uint16_t(t));
}

/** Per-queue transport state programmed by the driver. */
struct QueueState
{
    std::uint16_t sizeMax = 256; ///< device-advertised maximum
    std::uint16_t size = 256;    ///< driver-selected size
    bool enabled = false;
    std::uint16_t msixVector = 0;
    std::uint64_t descAddr = 0;
    std::uint64_t availAddr = 0;
    std::uint64_t usedAddr = 0;

    /** Ring layout from the programmed addresses. */
    VringLayout
    layout() const
    {
        return VringLayout(size, descAddr, availAddr, usedAddr);
    }
};

/**
 * Base class for virtio PCI functions.
 */
class VirtioPciDevice : public pci::PciDevice
{
  public:
    /**
     * @param type        virtio device type (net, block, ...)
     * @param num_queues  virtqueue count (e.g. 2 for net: rx+tx)
     * @param features    device-offered feature bits
     */
    VirtioPciDevice(Simulation &sim, std::string name, DeviceType type,
                    unsigned num_queues, std::uint64_t features);

    std::uint32_t barRead(int bar, Addr offset, unsigned size) override;
    void barWrite(int bar, Addr offset, std::uint32_t value,
                  unsigned size) override;

    DeviceType deviceType() const { return type_; }
    std::uint8_t status() const { return status_; }
    bool driverOk() const { return status_ & STATUS_DRIVER_OK; }
    std::uint64_t negotiatedFeatures() const { return guestFeatures_; }
    bool
    featureNegotiated(std::uint64_t f) const
    {
        return (guestFeatures_ & f) == f;
    }

    unsigned numQueues() const { return unsigned(queues_.size()); }
    QueueState &queueState(unsigned q);
    const QueueState &queueState(unsigned q) const;

    /**
     * MSI vector table size: one vector per queue plus the config
     * vector. Guest writes of Q_MSIX beyond this are contained as
     * BadMsiVector guest faults.
     */
    unsigned msiTableSize() const { return unsigned(queues_.size()) + 1; }

    /**
     * Observe contained guest faults on this function's register
     * interface (malformed doorbells, config accesses, feature
     * writes...). The transport never panics on them; the owner —
     * IO-Bond in the bridged topology — accounts and escalates.
     */
    using GuestFaultHandler = std::function<void(fault::GuestFaultKind)>;
    void
    setGuestFaultHandler(GuestFaultHandler h)
    {
        guestFaultHandler_ = std::move(h);
    }

    /** Raise the configured MSI vector for queue @p q. */
    void notifyGuest(unsigned q);

    /**
     * Device-fatal error (virtio 1.0 section 2.1.2): set
     * DEVICE_NEEDS_RESET and interrupt the driver so it notices.
     * The driver's only way out is a full reset + reinit.
     */
    void markNeedsReset();
    bool needsReset() const { return status_ & STATUS_NEEDS_RESET; }

  protected:
    /** Driver wrote the doorbell for queue @p q. */
    virtual void onQueueNotify(unsigned q) = 0;
    /** Driver completed initialization (DRIVER_OK written). */
    virtual void onDriverOk() {}
    /** Device reset requested (status written to 0). */
    virtual void onReset() {}

    /** Device-specific config space accesses (offset-relative). */
    virtual std::uint32_t deviceCfgRead(Addr offset, unsigned size);
    virtual void deviceCfgWrite(Addr offset, std::uint32_t value,
                                unsigned size);

    /** Record a contained guest fault (forwards to the handler). */
    void
    reportGuestFault(fault::GuestFaultKind k)
    {
        if (guestFaultHandler_)
            guestFaultHandler_(k);
    }

  private:
    std::uint32_t commonRead(Addr offset, unsigned size);
    void commonWrite(Addr offset, std::uint32_t value, unsigned size);
    void resetDevice();

    DeviceType type_;
    std::uint64_t deviceFeatures_;
    std::uint64_t guestFeatures_ = 0;
    std::uint32_t dfSelect_ = 0;
    std::uint32_t gfSelect_ = 0;
    std::uint8_t status_ = 0;
    std::uint8_t isr_ = 0;
    std::uint16_t queueSelect_ = 0;
    std::vector<QueueState> queues_;
    GuestFaultHandler guestFaultHandler_;
};

} // namespace virtio
} // namespace bmhive

#endif // BMHIVE_VIRTIO_VIRTIO_PCI_HH

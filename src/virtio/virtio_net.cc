#include "virtio/virtio_net.hh"

namespace bmhive {
namespace virtio {

void
VirtioNetHdr::writeTo(GuestMemory &m, Addr a) const
{
    m.write8(a + 0, flags);
    m.write8(a + 1, gsoType);
    m.write16(a + 2, hdrLen);
    m.write16(a + 4, gsoSize);
    m.write16(a + 6, csumStart);
    m.write16(a + 8, csumOffset);
    m.write16(a + 10, numBuffers);
}

VirtioNetHdr
VirtioNetHdr::readFrom(const GuestMemory &m, Addr a)
{
    VirtioNetHdr h;
    h.flags = m.read8(a + 0);
    h.gsoType = m.read8(a + 1);
    h.hdrLen = m.read16(a + 2);
    h.gsoSize = m.read16(a + 4);
    h.csumStart = m.read16(a + 6);
    h.csumOffset = m.read16(a + 8);
    h.numBuffers = m.read16(a + 10);
    return h;
}

} // namespace virtio
} // namespace bmhive

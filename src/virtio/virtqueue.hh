/**
 * @file
 * Driver- and device-side views of one virtqueue.
 *
 * VirtQueueDriver is what a guest's virtio-net/blk driver uses: it
 * owns the descriptor free list, writes descriptor chains (direct
 * or indirect), publishes them on the available ring, and reaps
 * completions from the used ring.
 *
 * VirtQueueDevice is what a backend uses: it pops available chains
 * (walking descriptor tables, resolving indirect tables) and pushes
 * used elements. In BM-Hive the device view operates on the shadow
 * vring in hypervisor memory; in the KVM baseline it operates on
 * the guest's own ring. Malformed chains (loops, out-of-range
 * indices) are counted and dropped, never fatal: a malicious guest
 * must not be able to take down the backend (paper's security
 * requirement, section 3.1).
 */

#ifndef BMHIVE_VIRTIO_VIRTQUEUE_HH
#define BMHIVE_VIRTIO_VIRTQUEUE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "base/stats.hh"
#include "fault/guest_fault.hh"
#include "mem/guest_memory.hh"
#include "virtio/vring.hh"

namespace bmhive {
namespace virtio {

/** One buffer segment of a descriptor chain. */
struct Segment
{
    Addr addr;
    std::uint32_t len;
    bool deviceWrites; ///< VRING_DESC_F_WRITE
};

/** A popped descriptor chain, device side. */
struct DescChain
{
    std::uint16_t head = 0;
    std::vector<Segment> segs;

    /** Total bytes the device may read (driver-filled buffers). */
    std::uint32_t readLen() const;
    /** Total bytes the device may write (driver-empty buffers). */
    std::uint32_t writeLen() const;
};

/** A reaped completion, driver side. */
struct UsedCompletion
{
    std::uint16_t head;
    std::uint32_t len;     ///< bytes the device wrote
    std::uint64_t cookie;  ///< driver-supplied request tag
};

/**
 * Full result of walking a descriptor chain, including structure
 * information IO-Bond needs to mirror the chain into a shadow
 * ring: the direct descriptor ids visited and the location of an
 * indirect table if one was used.
 */
struct ChainWalk
{
    bool ok = false;
    DescChain chain;
    std::vector<std::uint16_t> path; ///< direct desc ids, in order
    bool indirect = false;
    Addr indirectAddr = 0;
    std::uint16_t indirectCount = 0;
    /** Violation classification; meaningful only when !ok. */
    fault::GuestFaultKind fault = fault::GuestFaultKind::kCount;
};

/**
 * Walk the chain starting at @p head. Handles fully-direct chains
 * and single-indirect-descriptor chains (the two forms virtio 1.0
 * drivers produce); malformed input (loops, range errors, buffers
 * outside guest memory, zero-length or misordered segments, nested
 * indirect) yields ok == false with `fault` naming the violation.
 */
ChainWalk walkDescChain(const GuestMemory &mem,
                        const VringLayout &layout,
                        std::uint16_t head);

/**
 * Guest-driver view of a virtqueue.
 */
class VirtQueueDriver
{
  public:
    /**
     * @param mem    the guest memory holding the ring
     * @param layout ring addresses (as programmed into the device)
     * @param indirect  use indirect descriptors for chains > 1
     * @param event_idx VIRTIO_RING_F_EVENT_IDX negotiated: kick
     *        and interrupt decisions use the event-index fields
     *        instead of the flag bits
     */
    VirtQueueDriver(GuestMemory &mem, const VringLayout &layout,
                    bool indirect = false, Addr indirect_base = 0,
                    bool event_idx = false);

    /** Descriptors currently free. */
    std::uint16_t freeDescs() const
    {
        return std::uint16_t(freeList_.size());
    }

    /**
     * Submit one request: @p out segments the device reads, then
     * @p in segments the device writes.
     * @param cookie  tag returned with the completion
     * @return head descriptor index, or nullopt if out of
     *         descriptors.
     */
    std::optional<std::uint16_t>
    submit(const std::vector<Segment> &out,
           const std::vector<Segment> &in, std::uint64_t cookie);

    /** Reap all completions currently on the used ring. */
    std::vector<UsedCompletion> collectUsed();

    /**
     * True if the device asked for a notification ("kick") — i.e.
     * VRING_USED_F_NO_NOTIFY is clear in the used ring (or, with
     * event-idx, the avail index just crossed avail_event).
     */
    bool deviceWantsKick() const;

    /**
     * Kick decision point: like deviceWantsKick(), but in
     * event-idx mode it also records that everything published so
     * far has been signalled. Call exactly once per doorbell
     * opportunity.
     */
    bool shouldKick();

    /** Suppress or enable the device's completion interrupt. */
    void setNoInterrupt(bool suppress);

    const VringLayout &layout() const { return layout_; }
    std::uint16_t availIdxShadow() const { return availIdx_; }
    /** used->idx value collectUsed() has consumed up to. */
    std::uint16_t usedIdxSeen() const { return lastUsed_; }

    /**
     * Count detected ring-metadata corruption (a chain link
     * scribbled outside the table) in @p c instead of log-only.
     * The driver has no registry of its own, so the owner donates
     * a counter (typically named `...integrity.meta_faults`).
     */
    void setMetaFaultCounter(Counter *c) { metaFaults_ = c; }

  private:
    GuestMemory &mem_;
    VringLayout layout_;
    Counter *metaFaults_ = nullptr;
    bool indirect_;
    Addr indirectBase_;
    bool eventIdx_;
    std::uint16_t lastKickAvail_ = 0;

    std::vector<std::uint16_t> freeList_;
    std::vector<std::uint64_t> cookies_;   ///< by head index
    std::vector<std::uint16_t> chainLen_;  ///< descs used per head
    std::uint16_t availIdx_ = 0; ///< driver's shadow of avail->idx
    std::uint16_t lastUsed_ = 0; ///< last used->idx seen

    /** Max segments per indirect table (preallocated per head). */
    static constexpr std::uint16_t maxIndirect = 16;

    Addr indirectTable(std::uint16_t head) const;
    /** @return false if the head was not owned by the driver. */
    bool freeChain(std::uint16_t head);
};

/**
 * Device/backend view of a virtqueue.
 */
class VirtQueueDevice
{
  public:
    VirtQueueDevice(GuestMemory &mem, const VringLayout &layout,
                    bool event_idx = false);

    /**
     * Pop the next available chain; nullopt when the ring is empty
     * or the next chain is malformed (counted in badChains()).
     */
    std::optional<DescChain> pop();

    /**
     * Drain up to @p max available chains in one batched visit.
     * Unlike repeated pop(), malformed chains are completed with
     * zero length and skipped (they do not end the drain), and in
     * event-idx mode the kick threshold (avail_event) is re-armed
     * once at the end of the drain instead of per chain.
     */
    std::vector<DescChain> popBatch(unsigned max);

    /** True if any unprocessed avail entries exist. */
    bool hasWork() const;

    /** Complete a chain: @p written bytes placed in in-segments. */
    void pushUsed(std::uint16_t head, std::uint32_t written);

    /**
     * Complete a batch of chains with one used-index publish: all
     * used elements are written, then used->idx advances once over
     * the whole batch — the single tail write a backend pays per
     * completion batch.
     */
    void pushUsedBatch(const std::vector<VringUsedElem> &elems);

    /**
     * True if the driver wants a completion interrupt (i.e.
     * VRING_AVAIL_F_NO_INTERRUPT is clear; with event-idx, the
     * used index just crossed used_event).
     */
    bool driverWantsInterrupt() const;

    /**
     * Interrupt decision point after a completion batch: like
     * driverWantsInterrupt(), but in event-idx mode it also
     * records the signalled position. Call once per batch.
     */
    bool shouldInterrupt();

    /** Suppress or enable driver kicks. */
    void setNoNotify(bool suppress);

    std::uint64_t badChains() const { return badChains_.value(); }
    std::uint64_t popped() const { return popped_.value(); }
    const VringLayout &layout() const { return layout_; }
    std::uint16_t lastAvail() const { return lastAvail_; }
    std::uint16_t usedIdxShadow() const { return usedIdx_; }

  private:
    GuestMemory &mem_;
    VringLayout layout_;
    bool eventIdx_;
    bool notifySuppressed_ = false;
    std::uint16_t lastAvail_ = 0; ///< next avail slot to consume
    std::uint16_t usedIdx_ = 0;   ///< device's shadow of used->idx
    std::uint16_t lastIntrUsed_ = 0; ///< used idx at last IRQ
    Counter badChains_;
    Counter popped_;
};

} // namespace virtio
} // namespace bmhive

#endif // BMHIVE_VIRTIO_VIRTQUEUE_HH

/**
 * @file
 * Virtio-net wire format (virtio 1.0 section 5.1): the per-packet
 * header that precedes every frame on the tx/rx queues, the
 * device-specific configuration layout (MAC + status), and feature
 * bits. Used by the guest driver, the IO-Bond front-end, and the
 * bm-hypervisor / vhost backends.
 */

#ifndef BMHIVE_VIRTIO_VIRTIO_NET_HH
#define BMHIVE_VIRTIO_VIRTIO_NET_HH

#include <array>
#include <cstdint>

#include "mem/guest_memory.hh"

namespace bmhive {
namespace virtio {

/** Virtio-net feature bits. */
enum NetFeatureBits : std::uint64_t {
    VIRTIO_NET_F_CSUM = 1ull << 0,
    VIRTIO_NET_F_MAC = 1ull << 5,
    VIRTIO_NET_F_MRG_RXBUF = 1ull << 15,
    VIRTIO_NET_F_STATUS = 1ull << 16,
    /** Device offers multiple rx/tx queue pairs (section 5.1.3);
     *  the driver commits to a pair count via the config-space
     *  curr_pairs write (our ctrl-vq-less stand-in for
     *  VIRTIO_NET_CTRL_MQ_VQ_PAIRS_SET). */
    VIRTIO_NET_F_MQ = 1ull << 22,
};

/** Conventional queue indices for a 1-queue-pair device. */
enum NetQueues : unsigned {
    NET_RXQ = 0,
    NET_TXQ = 1,
};

/** Queue layout with VIRTIO_NET_F_MQ: rx0,tx0,rx1,tx1,... */
constexpr unsigned
netRxQueue(unsigned pair)
{
    return 2 * pair;
}
constexpr unsigned
netTxQueue(unsigned pair)
{
    return 2 * pair + 1;
}

/**
 * virtio_net_hdr, the 12-byte header (with num_buffers, as used
 * when VIRTIO_F_VERSION_1 is negotiated).
 */
struct VirtioNetHdr
{
    std::uint8_t flags = 0;
    std::uint8_t gsoType = 0;
    std::uint16_t hdrLen = 0;
    std::uint16_t gsoSize = 0;
    std::uint16_t csumStart = 0;
    std::uint16_t csumOffset = 0;
    std::uint16_t numBuffers = 0;

    static constexpr Bytes wireSize = 12;

    void writeTo(GuestMemory &m, Addr a) const;
    static VirtioNetHdr readFrom(const GuestMemory &m, Addr a);
};

/**
 * Device-specific config layout: MAC, status, then the multi-queue
 * fields — max_virtqueue_pairs is read-only (what the device
 * offers); curr_pairs is the driver's committed pair count, written
 * through config space after FEATURES_OK (the ctrl-style
 * set-queue-pairs command). Writes above the offered maximum are a
 * contained guest fault and clamp.
 */
struct VirtioNetConfig
{
    std::array<std::uint8_t, 6> mac{};
    std::uint16_t status = 1; // VIRTIO_NET_S_LINK_UP
    std::uint16_t maxVirtqueuePairs = 1;
    std::uint16_t currPairs = 1;

    static constexpr Addr macOffset = 0;
    static constexpr Addr statusOffset = 6;
    static constexpr Addr maxPairsOffset = 8;
    static constexpr Addr currPairsOffset = 10;
};

} // namespace virtio
} // namespace bmhive

#endif // BMHIVE_VIRTIO_VIRTIO_NET_HH

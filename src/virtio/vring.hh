/**
 * @file
 * Virtio 1.0 split-ring ("vring") memory layout.
 *
 * The ring lives in simulated guest memory with the exact byte
 * layout of the virtio 1.0 specification (section 2.4): a
 * descriptor table, an available ring written by the driver, and a
 * used ring written by the device. IO-Bond's shadow vrings (paper
 * Fig. 4) are a second instance of this same layout in hypervisor
 * memory, kept in sync by DMA.
 */

#ifndef BMHIVE_VIRTIO_VRING_HH
#define BMHIVE_VIRTIO_VRING_HH

#include <cstdint>

#include "base/units.hh"
#include "mem/guest_memory.hh"

namespace bmhive {
namespace virtio {

/** Descriptor flags (virtio 1.0 section 2.4.4). */
enum DescFlags : std::uint16_t {
    VRING_DESC_F_NEXT = 1,     ///< chained to the 'next' field
    VRING_DESC_F_WRITE = 2,    ///< device writes (vs reads) buffer
    VRING_DESC_F_INDIRECT = 4, ///< buffer holds an indirect table
};

/** Available-ring flags. */
enum AvailFlags : std::uint16_t {
    VRING_AVAIL_F_NO_INTERRUPT = 1,
};

/** Used-ring flags. */
enum UsedFlags : std::uint16_t {
    VRING_USED_F_NO_NOTIFY = 1,
};

/** One descriptor: 16 bytes on the wire. */
struct VringDesc
{
    std::uint64_t addr;  ///< guest-physical buffer address
    std::uint32_t len;   ///< buffer length
    std::uint16_t flags; ///< DescFlags
    std::uint16_t next;  ///< next descriptor if F_NEXT
};

static constexpr Bytes vringDescSize = 16;

/**
 * Event-index notification test (virtio 1.0 section 2.4.7.2):
 * with VIRTIO_RING_F_EVENT_IDX, a notification is needed iff the
 * index just passed the other side's published event index. All
 * arithmetic is modulo 2^16.
 */
constexpr bool
vringNeedEvent(std::uint16_t event, std::uint16_t new_idx,
               std::uint16_t old_idx)
{
    return std::uint16_t(new_idx - event - 1) <
           std::uint16_t(new_idx - old_idx);
}

/** One used-ring element: 8 bytes on the wire. */
struct VringUsedElem
{
    std::uint32_t id;  ///< head index of the completed chain
    std::uint32_t len; ///< bytes written into device-writable parts
};

/**
 * Address map of one vring of @c size entries based at the three
 * area addresses the driver programs into the device (queue_desc /
 * queue_driver / queue_device in the virtio-pci common config).
 */
class VringLayout
{
  public:
    VringLayout() = default;

    VringLayout(std::uint16_t size, Addr desc, Addr avail, Addr used)
        : size_(size), desc_(desc), avail_(avail), used_(used) {}

    /**
     * Compute a contiguous layout starting at @p base with the
     * spec's alignment rules; convenient for drivers allocating a
     * ring in one block.
     */
    static VringLayout contiguous(std::uint16_t size, Addr base);

    /** Total bytes of a contiguous ring of @p size entries. */
    static Bytes bytesNeeded(std::uint16_t size);

    std::uint16_t size() const { return size_; }
    Addr descAddr() const { return desc_; }
    Addr availAddr() const { return avail_; }
    Addr usedAddr() const { return used_; }
    bool valid() const { return size_ != 0; }

    /**
     * True if all three ring areas lie inside a memory of
     * @p mem_size bytes (overflow-safe). The area addresses are
     * guest-programmed and must be validated before any accessor
     * touches memory through this layout.
     */
    bool fitsIn(Bytes mem_size) const;

    // --- Descriptor table ---
    VringDesc readDesc(const GuestMemory &m, std::uint16_t i) const;
    void writeDesc(GuestMemory &m, std::uint16_t i,
                   const VringDesc &d) const;

    // --- Available ring (driver -> device) ---
    std::uint16_t availFlags(const GuestMemory &m) const;
    std::uint16_t availIdx(const GuestMemory &m) const;
    std::uint16_t availRing(const GuestMemory &m,
                            std::uint16_t slot) const;
    void setAvailFlags(GuestMemory &m, std::uint16_t v) const;
    void setAvailIdx(GuestMemory &m, std::uint16_t v) const;
    void setAvailRing(GuestMemory &m, std::uint16_t slot,
                      std::uint16_t v) const;
    /** used_event field (F_EVENT_IDX), after the ring entries. */
    std::uint16_t usedEvent(const GuestMemory &m) const;
    void setUsedEvent(GuestMemory &m, std::uint16_t v) const;

    // --- Used ring (device -> driver) ---
    std::uint16_t usedFlags(const GuestMemory &m) const;
    std::uint16_t usedIdx(const GuestMemory &m) const;
    VringUsedElem usedRing(const GuestMemory &m,
                           std::uint16_t slot) const;
    void setUsedFlags(GuestMemory &m, std::uint16_t v) const;
    void setUsedIdx(GuestMemory &m, std::uint16_t v) const;
    void setUsedRing(GuestMemory &m, std::uint16_t slot,
                     const VringUsedElem &e) const;
    /** avail_event field, after the used entries. */
    std::uint16_t availEvent(const GuestMemory &m) const;
    void setAvailEvent(GuestMemory &m, std::uint16_t v) const;

    /** Byte sizes of the three areas (for shadow-ring DMA sync). */
    Bytes descBytes() const { return Bytes(size_) * vringDescSize; }
    Bytes availBytes() const { return 4 + 2 * Bytes(size_) + 2; }
    Bytes usedBytes() const { return 4 + 8 * Bytes(size_) + 2; }

  private:
    std::uint16_t size_ = 0;
    Addr desc_ = 0;
    Addr avail_ = 0;
    Addr used_ = 0;
};

} // namespace virtio
} // namespace bmhive

#endif // BMHIVE_VIRTIO_VRING_HH

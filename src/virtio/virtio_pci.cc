#include "virtio/virtio_pci.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"

namespace bmhive {
namespace virtio {

VirtioPciDevice::VirtioPciDevice(Simulation &sim, std::string name,
                                 DeviceType type, unsigned num_queues,
                                 std::uint64_t features)
    : pci::PciDevice(sim, std::move(name)), type_(type),
      deviceFeatures_(features | VIRTIO_F_VERSION_1),
      queues_(num_queues)
{
    panic_if(num_queues == 0, "virtio device needs >= 1 queue");
    // Class code 0x0780: "simple communication controller, other".
    config().setIds(virtioVendorId, virtioDeviceId(type),
                    virtioVendorId, std::uint16_t(type), 0x078000, 1);
    // BAR0 covers common cfg + notify + ISR + device cfg.
    config().addMemBar(0, 0x4000);
    // A vendor capability marks the modern layout; an MSI cap
    // carries the vector count. Contents are informational in the
    // model but the list structure is real (probe-able).
    config().addCapability(pci::CAP_ID_VENDOR, 16);
    config().addCapability(pci::CAP_ID_MSI, 12);
    config().setViolationHandler([this]() {
        reportGuestFault(fault::GuestFaultKind::BadConfigAccess);
    });
}

QueueState &
VirtioPciDevice::queueState(unsigned q)
{
    panic_if(q >= queues_.size(), name(), ": bad queue index ", q);
    return queues_[q];
}

const QueueState &
VirtioPciDevice::queueState(unsigned q) const
{
    panic_if(q >= queues_.size(), name(), ": bad queue index ", q);
    return queues_[q];
}

void
VirtioPciDevice::notifyGuest(unsigned q)
{
    isr_ |= 1;
    raiseMsi(queueState(q).msixVector);
}

void
VirtioPciDevice::markNeedsReset()
{
    if (status_ & STATUS_NEEDS_RESET)
        return; // already pending; the driver will get there
    status_ |= STATUS_NEEDS_RESET;
    if (!driverOk())
        return; // no driver to interrupt yet
    // Kick every enabled queue's vector (deduplicated) so the
    // driver observes the condition from any interrupt handler.
    isr_ |= 1;
    std::vector<std::uint16_t> raised;
    for (const auto &q : queues_) {
        if (!q.enabled)
            continue;
        if (std::find(raised.begin(), raised.end(),
                      q.msixVector) != raised.end())
            continue;
        raised.push_back(q.msixVector);
        raiseMsi(q.msixVector);
    }
}

std::uint32_t
VirtioPciDevice::barRead(int bar, Addr offset, unsigned size)
{
    if (bar != 0)
        return 0xffffffffu;
    if (offset < notifyRegionOffset)
        return commonRead(offset, size);
    if (offset >= isrOffset && offset < deviceCfgOffset) {
        std::uint8_t v = isr_;
        isr_ = 0; // read-to-ack
        return v;
    }
    if (offset >= deviceCfgOffset)
        return deviceCfgRead(offset - deviceCfgOffset, size);
    return 0; // notify region reads as zero
}

void
VirtioPciDevice::barWrite(int bar, Addr offset, std::uint32_t value,
                          unsigned size)
{
    if (bar != 0)
        return;
    if (offset < notifyRegionOffset) {
        commonWrite(offset, value, size);
        return;
    }
    if (offset >= notifyRegionOffset && offset < isrOffset) {
        unsigned q = value;
        if (q >= queues_.size()) {
            reportGuestFault(fault::GuestFaultKind::BadQueueIndex);
            return;
        }
        if (queues_[q].enabled)
            onQueueNotify(q);
        return;
    }
    if (offset >= deviceCfgOffset)
        deviceCfgWrite(offset - deviceCfgOffset, value, size);
}

std::uint32_t
VirtioPciDevice::commonRead(Addr offset, unsigned size)
{
    // queueSelect_ is guest-controlled and may point past the last
    // queue. Per the spec the device then reports Q_SIZE = 0
    // ("queue unavailable"); probing is legitimate, so reads of the
    // per-queue registers return zero rather than fault.
    QueueState *qs = queueSelect_ < queues_.size()
                         ? &queues_[queueSelect_]
                         : nullptr;
    switch (offset) {
      case COMMON_DFSELECT:
        return dfSelect_;
      case COMMON_DF:
        return std::uint32_t(deviceFeatures_ >> (32 * dfSelect_));
      case COMMON_GFSELECT:
        return gfSelect_;
      case COMMON_GF:
        return std::uint32_t(guestFeatures_ >> (32 * gfSelect_));
      case COMMON_NUMQ:
        return std::uint32_t(queues_.size());
      case COMMON_STATUS:
        return status_;
      case COMMON_CFGGEN:
        return 0;
      case COMMON_Q_SELECT:
        return queueSelect_;
      case COMMON_Q_SIZE:
        return qs ? qs->size : 0;
      case COMMON_Q_MSIX:
        return qs ? qs->msixVector : 0;
      case COMMON_Q_ENABLE:
        return (qs && qs->enabled) ? 1 : 0;
      case COMMON_Q_NOFF:
        return queueSelect_;
      case COMMON_Q_DESCLO:
        return qs ? std::uint32_t(qs->descAddr) : 0;
      case COMMON_Q_DESCHI:
        return qs ? std::uint32_t(qs->descAddr >> 32) : 0;
      case COMMON_Q_AVAILLO:
        return qs ? std::uint32_t(qs->availAddr) : 0;
      case COMMON_Q_AVAILHI:
        return qs ? std::uint32_t(qs->availAddr >> 32) : 0;
      case COMMON_Q_USEDLO:
        return qs ? std::uint32_t(qs->usedAddr) : 0;
      case COMMON_Q_USEDHI:
        return qs ? std::uint32_t(qs->usedAddr >> 32) : 0;
      default:
        (void)size;
        return 0;
    }
}

void
VirtioPciDevice::commonWrite(Addr offset, std::uint32_t value,
                             unsigned size)
{
    (void)size;
    // Guest-controlled select: writes to per-queue registers with
    // an out-of-range selector are a contained guest fault (reads
    // are probing and stay silent, see commonRead).
    QueueState *qs = queueSelect_ < queues_.size()
                         ? &queues_[queueSelect_]
                         : nullptr;
    auto select_ok = [this, qs]() {
        if (!qs)
            reportGuestFault(fault::GuestFaultKind::BadQueueIndex);
        return qs != nullptr;
    };
    auto set_lo = [](std::uint64_t &r, std::uint32_t v) {
        r = (r & 0xffffffff00000000ull) | v;
    };
    auto set_hi = [](std::uint64_t &r, std::uint32_t v) {
        r = (r & 0xffffffffull) | (std::uint64_t(v) << 32);
    };

    switch (offset) {
      case COMMON_DFSELECT:
        dfSelect_ = value & 1;
        break;
      case COMMON_GFSELECT:
        gfSelect_ = value & 1;
        break;
      case COMMON_GF: {
        if (status_ & STATUS_FEATURES_OK) {
            // Renegotiating after FEATURES_OK is a spec violation;
            // freeze the negotiated set and flag the driver.
            reportGuestFault(fault::GuestFaultKind::BadFeatureWrite);
            break;
        }
        std::uint64_t mask = 0xffffffffull << (32 * gfSelect_);
        std::uint64_t bits = std::uint64_t(value) << (32 * gfSelect_);
        // The driver may only accept offered features.
        guestFeatures_ =
            (guestFeatures_ & ~mask) | (bits & deviceFeatures_);
        break;
      }
      case COMMON_STATUS: {
        if (value == 0) {
            resetDevice();
            break;
        }
        std::uint8_t v = std::uint8_t(value);
        // NEEDS_RESET is device-owned: only a full reset clears it.
        v |= status_ & STATUS_NEEDS_RESET;
        if ((v & STATUS_FEATURES_OK) &&
            !(status_ & STATUS_FEATURES_OK) &&
            !(guestFeatures_ & VIRTIO_F_VERSION_1)) {
            // A modern device must reject FEATURES_OK unless
            // VERSION_1 was accepted (virtio 1.0 section 6.1); the
            // driver reads back status to discover the refusal.
            reportGuestFault(fault::GuestFaultKind::BadFeatureWrite);
            v &= std::uint8_t(~STATUS_FEATURES_OK);
        }
        status_ = v;
        if (status_ & STATUS_DRIVER_OK)
            onDriverOk();
        break;
      }
      case COMMON_Q_SELECT:
        queueSelect_ = std::uint16_t(value);
        break;
      case COMMON_Q_SIZE:
        if (!select_ok())
            break;
        if (value > 0 && value <= qs->sizeMax &&
            (value & (value - 1)) == 0)
            qs->size = std::uint16_t(value);
        break;
      case COMMON_Q_MSIX:
        if (!select_ok())
            break;
        if (value >= msiTableSize()) {
            reportGuestFault(fault::GuestFaultKind::BadMsiVector);
            break;
        }
        qs->msixVector = std::uint16_t(value);
        break;
      case COMMON_Q_ENABLE:
        if (!select_ok())
            break;
        qs->enabled = (value != 0);
        break;
      case COMMON_Q_DESCLO:
        if (select_ok())
            set_lo(qs->descAddr, value);
        break;
      case COMMON_Q_DESCHI:
        if (select_ok())
            set_hi(qs->descAddr, value);
        break;
      case COMMON_Q_AVAILLO:
        if (select_ok())
            set_lo(qs->availAddr, value);
        break;
      case COMMON_Q_AVAILHI:
        if (select_ok())
            set_hi(qs->availAddr, value);
        break;
      case COMMON_Q_USEDLO:
        if (select_ok())
            set_lo(qs->usedAddr, value);
        break;
      case COMMON_Q_USEDHI:
        if (select_ok())
            set_hi(qs->usedAddr, value);
        break;
      default:
        break;
    }
}

void
VirtioPciDevice::resetDevice()
{
    status_ = 0;
    isr_ = 0;
    guestFeatures_ = 0;
    dfSelect_ = gfSelect_ = 0;
    queueSelect_ = 0;
    for (auto &q : queues_) {
        std::uint16_t max = q.sizeMax;
        q = QueueState{};
        q.sizeMax = max;
        q.size = max;
    }
    onReset();
}

std::uint32_t
VirtioPciDevice::deviceCfgRead(Addr offset, unsigned size)
{
    (void)offset;
    (void)size;
    return 0;
}

void
VirtioPciDevice::deviceCfgWrite(Addr offset, std::uint32_t value,
                                unsigned size)
{
    (void)offset;
    (void)value;
    (void)size;
}

} // namespace virtio
} // namespace bmhive

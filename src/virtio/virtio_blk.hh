/**
 * @file
 * Virtio-blk wire format (virtio 1.0 section 5.2): the request
 * header (type, sector), the trailing status byte, the
 * device-specific configuration (capacity), and feature bits.
 */

#ifndef BMHIVE_VIRTIO_VIRTIO_BLK_HH
#define BMHIVE_VIRTIO_VIRTIO_BLK_HH

#include <cstdint>

#include "mem/guest_memory.hh"

namespace bmhive {
namespace virtio {

/** Virtio-blk request types. */
enum BlkReqType : std::uint32_t {
    VIRTIO_BLK_T_IN = 0,    ///< read
    VIRTIO_BLK_T_OUT = 1,   ///< write
    VIRTIO_BLK_T_FLUSH = 4,
};

/** Virtio-blk status byte values. */
enum BlkStatus : std::uint8_t {
    VIRTIO_BLK_S_OK = 0,
    VIRTIO_BLK_S_IOERR = 1,
    VIRTIO_BLK_S_UNSUPP = 2,
};

/** Virtio-blk feature bits. */
enum BlkFeatureBits : std::uint64_t {
    VIRTIO_BLK_F_SEG_MAX = 1ull << 2,
    VIRTIO_BLK_F_BLK_SIZE = 1ull << 6,
    VIRTIO_BLK_F_FLUSH = 1ull << 9,
    /** Device offers multiple submission queues (num_queues in the
     *  device config); the driver submits on queue vCPU % n. */
    VIRTIO_BLK_F_MQ = 1ull << 12,
};

constexpr Bytes blkSectorSize = 512;

/**
 * virtio_blk_req header: 16 bytes the device reads, followed in the
 * chain by data segments and a 1-byte status the device writes.
 */
struct VirtioBlkReqHdr
{
    std::uint32_t type = VIRTIO_BLK_T_IN;
    std::uint32_t reserved = 0;
    std::uint64_t sector = 0;

    static constexpr Bytes wireSize = 16;

    void
    writeTo(GuestMemory &m, Addr a) const
    {
        m.write32(a, type);
        m.write32(a + 4, reserved);
        m.write64(a + 8, sector);
    }

    static VirtioBlkReqHdr
    readFrom(const GuestMemory &m, Addr a)
    {
        VirtioBlkReqHdr h;
        h.type = m.read32(a);
        h.reserved = m.read32(a + 4);
        h.sector = m.read64(a + 8);
        return h;
    }
};

/** Device-specific config: capacity in 512-byte sectors, then the
 *  submission-queue count offered with VIRTIO_BLK_F_MQ. */
struct VirtioBlkConfig
{
    std::uint64_t capacitySectors = 0;
    std::uint16_t numQueues = 1;

    static constexpr Addr capacityOffset = 0;
    static constexpr Addr numQueuesOffset = 8;
};

} // namespace virtio
} // namespace bmhive

#endif // BMHIVE_VIRTIO_VIRTIO_BLK_HH

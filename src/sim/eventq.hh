/**
 * @file
 * Discrete-event simulation core: Event, EventQueue.
 *
 * The event queue is the single source of simulated time. Events
 * are ordered by (tick, priority, insertion sequence); same-tick
 * events therefore execute in a deterministic order, which the
 * test suite relies on.
 */

#ifndef BMHIVE_SIM_EVENTQ_HH
#define BMHIVE_SIM_EVENTQ_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/units.hh"

namespace bmhive {

class EventQueue;

/**
 * An occurrence scheduled at a point in simulated time. Subclass
 * and implement process(), or use EventFunctionWrapper for
 * lambda-based events.
 *
 * Events do not own themselves; the creating object manages their
 * lifetime and must keep them alive while scheduled. Once
 * descheduled, an event may be destroyed immediately: the queue
 * identifies its stale heap entry by sequence number and never
 * touches the event pointer again (this is what lets a demoted
 * passthrough poller be torn down mid-simulation).
 */
class Event
{
  public:
    /** Lower value runs first among same-tick events. */
    using Priority = int;

    static constexpr Priority defaultPri = 0;
    /** Service/poll loops run after ordinary events of that tick. */
    static constexpr Priority pollPri = 10;
    /** Statistics collection runs last at a given tick. */
    static constexpr Priority statsPri = 100;

    explicit Event(Priority pri = defaultPri) : priority_(pri) {}
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Called by the queue when simulated time reaches when(). */
    virtual void process() = 0;

    /** Human-readable label for tracing. */
    virtual std::string name() const { return "event"; }

    bool scheduled() const { return scheduled_; }
    Tick when() const { return when_; }
    Priority priority() const { return priority_; }

  private:
    friend class EventQueue;

    Tick when_ = 0;
    Priority priority_;
    std::uint64_t sequence_ = 0;
    bool scheduled_ = false;
    /** Queue holding this event while scheduled. Partitioned
     *  simulations have one queue per partition; descheduling
     *  through the wrong one would corrupt that queue's stale-entry
     *  bookkeeping, so the owning queue is checked explicitly. */
    EventQueue *queue_ = nullptr;
};

/** Event that invokes a stored callable; the common case. */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> fn, std::string name,
                         Priority pri = defaultPri)
        : Event(pri), fn_(std::move(fn)), name_(std::move(name)) {}

    void process() override { fn_(); }
    std::string name() const override { return name_; }

  private:
    std::function<void()> fn_;
    std::string name_;
};

/**
 * Fire-and-forget event: runs its callable once and deletes itself.
 * Use for asynchronous completions with no owner (e.g. in-flight
 * MSI messages). Must be heap-allocated.
 */
class OneShotEvent : public Event
{
  public:
    OneShotEvent(std::function<void()> fn, std::string name,
                 Priority pri = defaultPri)
        : Event(pri), fn_(std::move(fn)), name_(std::move(name)) {}

    void
    process() override
    {
        auto fn = std::move(fn_);
        delete this;
        if (fn)
            fn();
    }

    std::string name() const override { return name_; }

  private:
    std::function<void()> fn_;
    std::string name_;
};

/**
 * The ordering structure for events. A classic simulation has one
 * queue that everything shares; a partitioned simulation has one
 * per partition, each advancing its own curTick within the bounds
 * negotiated by the coordinator.
 */
class EventQueue
{
  public:
    /**
     * @param seqBase starting value for insertion sequence numbers.
     * Partitioned simulations give each queue a disjoint sequence
     * space so a cross-queue deschedule can never alias another
     * queue's live entry.
     */
    explicit EventQueue(std::uint64_t seqBase = 0)
        : nextSeq_(seqBase) {}

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** Schedule @p ev at absolute time @p when (>= curTick). */
    void schedule(Event *ev, Tick when);

    /** Remove a scheduled event from the queue. */
    void deschedule(Event *ev);

    /** Deschedule (if scheduled) and re-schedule at @p when. */
    void reschedule(Event *ev, Tick when);

    /** True if no events remain. */
    bool empty() const { return liveCount_ == 0; }

    /** Number of scheduled (non-squashed) events. */
    std::size_t size() const { return liveCount_; }

    /** Tick of the next live event; maxTick when empty. */
    Tick nextTick() const;

    /**
     * Run the next event.
     * @return false if the queue was empty.
     */
    bool step();

    /**
     * Run until curTick exceeds @p limit or the queue is empty.
     * With a finite limit, curTick always lands exactly on @p limit
     * — including when the queue drains first — so fixed-window
     * callers (fleet pumps, partition rounds) never observe stale
     * time after an idle window.
     */
    void run(Tick limit = maxTick);

    /** Total events processed since construction. */
    std::uint64_t processedCount() const { return processed_; }

    /**
     * Heap entries currently held, live plus stale. Compaction
     * keeps this within ~2x the live count (plus a small floor)
     * under reschedule storms.
     */
    std::size_t heapSize() const { return heap_.size(); }

    /** Times the heap was rebuilt to shed stale entries. */
    std::uint64_t compactions() const { return compactions_; }

    /** Invoked after every compaction (metric counter hookup). */
    void
    setCompactionHook(std::function<void()> hook)
    {
        onCompact_ = std::move(hook);
    }

    /** Same-tick events after which step() declares a livelock. */
    static constexpr std::uint64_t sameTickLimit = 2'000'000;

    /** Stale entries below this never trigger a compaction. */
    static constexpr std::size_t compactMinStale = 64;

  private:
    struct Entry
    {
        Tick when;
        Event::Priority pri;
        std::uint64_t seq;
        Event *ev;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (pri != o.pri)
                return pri > o.pri;
            return seq > o.seq;
        }
    };

    /** Min-heap on (when, pri, seq): std::*_heap with greater. */
    static constexpr std::greater<Entry> heapCmp{};

    /** Drop stale entries from the top of the heap. */
    void skim();

    /** Rebuild the heap without stale entries once they dominate. */
    void maybeCompact();

    /** Binary min-heap over Entry (std::*_heap with greater-than).
     *  A raw vector rather than std::priority_queue so compaction
     *  can filter stale entries in place and re-heapify. */
    std::vector<Entry> heap_;
    /** Sequence numbers of descheduled-but-not-yet-popped entries.
     *  Staleness is decided on these alone — the Event behind a
     *  stale entry may already be gone. */
    std::unordered_set<std::uint64_t> staleSeqs_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;
    std::uint64_t sameTickCount_ = 0;
    std::uint64_t compactions_ = 0;
    std::size_t liveCount_ = 0;
    std::function<void()> onCompact_;
};

} // namespace bmhive

#endif // BMHIVE_SIM_EVENTQ_HH

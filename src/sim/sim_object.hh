/**
 * @file
 * SimObject: named component attached to a Simulation context.
 * Simulation bundles the event queue and the root random source so
 * that a whole run is reproducible from one seed.
 */

#ifndef BMHIVE_SIM_SIM_OBJECT_HH
#define BMHIVE_SIM_SIM_OBJECT_HH

#include <cstdint>
#include <string>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/units.hh"
#include "fault/fault.hh"
#include "obs/metric_registry.hh"
#include "obs/trace.hh"
#include "sim/eventq.hh"

namespace bmhive {

/**
 * Owner of simulated time and randomness for one experiment run.
 * Also owns the run's observability surface: the metric registry
 * every SimObject registers into and the (off-by-default) Chrome
 * trace sink. Keeping these per-simulation, not process-global,
 * means benches that build several testbeds never mix samples.
 */
class Simulation
{
  public:
    explicit Simulation(std::uint64_t seed = 1) : rng_(seed)
    {
        // Log lines carry the current simulated time of the most
        // recently constructed simulation.
        Logger::global().setTickSource([this] { return now(); },
                                       this);
    }

    ~Simulation() { Logger::global().clearTickSource(this); }

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    EventQueue &eventq() { return eventq_; }
    Rng &rng() { return rng_; }
    Tick now() const { return eventq_.curTick(); }

    obs::MetricRegistry &metrics() { return metrics_; }
    obs::TraceSink &trace() { return trace_; }
    fault::FaultHookRegistry &faults() { return faults_; }

    /** Run the event loop until empty or @p limit. */
    void run(Tick limit = maxTick) { eventq_.run(limit); }

  private:
    EventQueue eventq_;
    Rng rng_;
    obs::MetricRegistry metrics_;
    obs::TraceSink trace_;
    fault::FaultHookRegistry faults_;
};

/**
 * Base class for every simulated component. Provides the name and
 * convenience access to the owning Simulation's queue and RNG.
 */
class SimObject
{
  public:
    SimObject(Simulation &sim, std::string name)
        : sim_(sim), name_(std::move(name)) {}
    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    Simulation &sim() { return sim_; }
    EventQueue &eventq() { return sim_.eventq(); }
    Rng &rng() { return sim_.rng(); }
    Tick curTick() const { return sim_.now(); }
    obs::MetricRegistry &metrics() { return sim_.metrics(); }
    obs::TraceSink &traceSink() { return sim_.trace(); }
    fault::FaultHookRegistry &faults() { return sim_.faults(); }

    /** Debug log attributed to this object (see Logger::debugEnable). */
    template <typename... Args>
    void
    logDebug(Args &&...args) const
    {
        bmhive::debug(name_, std::forward<Args>(args)...);
    }

    /** Schedule @p ev at a delay relative to now. */
    void
    scheduleIn(Event *ev, Tick delay)
    {
        eventq().schedule(ev, curTick() + delay);
    }

  protected:
    Simulation &sim_;

  private:
    std::string name_;
};

} // namespace bmhive

#endif // BMHIVE_SIM_SIM_OBJECT_HH

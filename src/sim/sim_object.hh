/**
 * @file
 * SimObject: named component attached to a Simulation context.
 * Simulation bundles the event queue and the root random source so
 * that a whole run is reproducible from one seed.
 *
 * A Simulation normally runs single-threaded on one event queue.
 * enablePartitions() switches it to the partitioned core
 * (sim/partition.hh): one queue per base server plus the control
 * queue, advanced in conservative lookahead rounds by a worker
 * pool. SimObjects capture their partition at construction (via
 * psim::PartitionScope) and route all queue/RNG/time accessors
 * through it, so component code is identical in both modes.
 */

#ifndef BMHIVE_SIM_SIM_OBJECT_HH
#define BMHIVE_SIM_SIM_OBJECT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/units.hh"
#include "fault/fault.hh"
#include "obs/metric_registry.hh"
#include "obs/trace.hh"
#include "sim/eventq.hh"
#include "sim/partition.hh"

namespace bmhive {

/**
 * Owner of simulated time and randomness for one experiment run.
 * Also owns the run's observability surface: the metric registry
 * every SimObject registers into and the (off-by-default) Chrome
 * trace sink. Keeping these per-simulation, not process-global,
 * means benches that build several testbeds never mix samples.
 */
class Simulation
{
  public:
    explicit Simulation(std::uint64_t seed = 1)
        : seed_(seed), rng_(seed)
    {
        // Log lines carry the current simulated time of the most
        // recently constructed simulation.
        Logger::global().setTickSource([this] { return now(); },
                                       this);
        eventq_.setCompactionHook(
            [c = &metrics_.counter("sim.eventq.compactions")] {
                c->inc();
            });
    }

    ~Simulation() { Logger::global().clearTickSource(this); }

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    std::uint64_t seed() const { return seed_; }

    /**
     * Queue of the current execution context: the control queue in
     * a classic simulation, the executing partition's queue inside
     * a partitioned round. Partition-affine components should use
     * SimObject::eventq(), which resolves through the object's own
     * partition instead.
     */
    EventQueue &
    eventq()
    {
        if (!psim_)
            return eventq_;
        return psim_->queue(currentPartition());
    }

    Rng &rng() { return rng_; }

    /** Simulated time of the current execution context. */
    Tick
    now() const
    {
        if (!psim_)
            return eventq_.curTick();
        return psim_->queue(currentPartition()).curTick();
    }

    obs::MetricRegistry &metrics() { return metrics_; }
    obs::TraceSink &trace() { return trace_; }
    fault::FaultHookRegistry &faults() { return faults_; }

    /** Run the event loop until empty or @p limit. */
    void
    run(Tick limit = maxTick)
    {
        if (psim_)
            psim_->run(limit);
        else
            eventq_.run(limit);
    }

    /**
     * @name Partitioned execution
     * @{
     */

    /**
     * Switch to the partitioned core with @p servers server
     * partitions (plus control partition 0). Must be called before
     * any events run; component construction afterwards should be
     * wrapped in psim::PartitionScope to assign affinity.
     */
    void enablePartitions(unsigned servers, psim::Params params = {});

    bool partitioned() const { return psim_ != nullptr; }

    /** Partition count including control (1 when classic). */
    unsigned
    partitions() const
    {
        return psim_ ? psim_->partitions() : 1;
    }

    /** Partition of the innermost active scope (0 outside any). */
    unsigned
    currentPartition() const
    {
        return psim_ ? psim::currentPartitionOf(this) : 0;
    }

    EventQueue &
    partitionQueue(unsigned p)
    {
        if (!psim_ || p == 0)
            return eventq_;
        return psim_->queue(p);
    }

    Tick
    partitionTick(unsigned p) const
    {
        if (!psim_ || p == 0)
            return eventq_.curTick();
        return psim_->queue(p).curTick();
    }

    /** Per-partition RNG shard; partition 0 is the root rng(). */
    Rng &
    partitionRng(unsigned p)
    {
        if (!psim_ || p == 0)
            return rng_;
        return psim_->rng(p);
    }

    /** Conservative lookahead in ticks (0 when classic). */
    Tick lookahead() const { return psim_ ? psim_->lookahead() : 0; }

    /**
     * Deliver @p fn in partition @p dst at absolute tick @p when —
     * the cross-partition mailbox API. From inside a parallel phase
     * the send buffers in the source partition's outbox and @p when
     * must respect the lookahead contract; everywhere else (and in
     * classic mode) it degenerates to scheduling a OneShotEvent.
     */
    void
    post(unsigned dst, Tick when, std::function<void()> fn,
         Event::Priority pri = Event::defaultPri,
         std::string what = "xpart")
    {
        if (psim_) {
            psim_->post(dst, when, std::move(fn), pri,
                        std::move(what));
        } else {
            auto *ev = new OneShotEvent(std::move(fn),
                                        std::move(what), pri);
            eventq_.schedule(ev, when);
        }
    }

    /** @} */

  private:
    std::uint64_t seed_;
    EventQueue eventq_;
    Rng rng_;
    obs::MetricRegistry metrics_;
    obs::TraceSink trace_;
    fault::FaultHookRegistry faults_;
    std::unique_ptr<psim::Coordinator> psim_;
};

/**
 * Base class for every simulated component. Provides the name and
 * convenience access to the owning Simulation's queue and RNG.
 *
 * Partition affinity is captured from the thread-local
 * psim::PartitionScope active at construction (partition 0 when
 * none is). When the scope carries a shared partition cell (one
 * per guest), the object resolves its partition through the cell,
 * so migrating the guest re-homes every component at once.
 */
class SimObject
{
  public:
    SimObject(Simulation &sim, std::string name)
        : sim_(sim), name_(std::move(name)),
          partition_(psim::currentPartitionOf(&sim)),
          partitionCell_(psim::currentCellOf(&sim)) {}
    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    Simulation &sim() { return sim_; }

    /** Partition this object's events execute in. */
    unsigned
    partition() const
    {
        return partitionCell_ ? *partitionCell_ : partition_;
    }

    EventQueue &eventq() { return sim_.partitionQueue(partition()); }
    Rng &rng() { return sim_.partitionRng(partition()); }
    Tick curTick() const { return sim_.partitionTick(partition()); }
    obs::MetricRegistry &metrics() { return sim_.metrics(); }
    obs::TraceSink &traceSink() { return sim_.trace(); }
    fault::FaultHookRegistry &faults() { return sim_.faults(); }

    /** Debug log attributed to this object (see Logger::debugEnable). */
    template <typename... Args>
    void
    logDebug(Args &&...args) const
    {
        bmhive::debug(name_, std::forward<Args>(args)...);
    }

    /** Schedule @p ev at a delay relative to now. */
    void
    scheduleIn(Event *ev, Tick delay)
    {
        eventq().schedule(ev, curTick() + delay);
    }

  protected:
    /** Cell this object's partition resolves through, if any
     *  (constructed under a cell-carrying PartitionScope). */
    const unsigned *partitionCell() const { return partitionCell_; }

    Simulation &sim_;

  private:
    std::string name_;
    unsigned partition_;
    const unsigned *partitionCell_;
};

} // namespace bmhive

#endif // BMHIVE_SIM_SIM_OBJECT_HH

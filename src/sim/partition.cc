/**
 * @file
 * Coordinator for the partitioned simulation core: the windowed
 * round loop, worker pool, cross-partition mailboxes, and the
 * thread-local partition context. See partition.hh for the model
 * and the determinism argument.
 */

#include "sim/partition.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/paper_constants.hh"
#include "sim/sim_object.hh"

namespace bmhive {
namespace psim {

namespace {

thread_local ExecCtx tlsCtx;

/** SplitMix64 finalizer: decorrelates per-partition RNG seeds. */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t partition)
{
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (partition + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

unsigned
currentPartitionOf(const void *sim)
{
    return tlsCtx.sim == sim ? tlsCtx.part : 0;
}

const unsigned *
currentCellOf(const void *sim)
{
    return tlsCtx.sim == sim ? tlsCtx.cell : nullptr;
}

PartitionScope::PartitionScope(Simulation &sim, unsigned part)
    : prev_(tlsCtx)
{
    tlsCtx = ExecCtx{&sim, part, nullptr};
}

PartitionScope::PartitionScope(Simulation &sim, const unsigned *cell,
                               unsigned part)
    : prev_(tlsCtx)
{
    tlsCtx = ExecCtx{&sim, cell ? *cell : part, cell};
}

PartitionScope::~PartitionScope()
{
    tlsCtx = prev_;
}

Coordinator::Coordinator(Simulation &sim, unsigned servers,
                         Params params)
    : sim_(sim),
      lookahead_(params.lookahead ? params.lookahead
                                  : paper::ioBondPciAccess),
      threads_(std::max(1u, params.threads))
{
    panic_if(servers == 0, "partitioned simulation needs at least "
                           "one server partition");
    panic_if(lookahead_ == 0, "conservative lookahead must be > 0");

    queues_.push_back(&sim.eventq());
    for (unsigned p = 1; p <= servers; ++p) {
        // Disjoint sequence spaces: a cross-queue deschedule can
        // then never alias another queue's live entry (it panics on
        // the owning-queue check instead).
        ownedQueues_.push_back(
            std::make_unique<EventQueue>(std::uint64_t(p) << 48));
        queues_.push_back(ownedQueues_.back().get());
        rngs_.push_back(
            std::make_unique<Rng>(mixSeed(sim.seed(), p)));
    }
    outboxes_.resize(queues_.size());

    auto &reg = sim.metrics();
    roundsCtr_ = &reg.counter("sim.psim.rounds");
    messagesCtr_ = &reg.counter("sim.psim.messages");
    compactionsCtr_ = &reg.counter("sim.eventq.compactions");

    // Workers sleep on cv_ between rounds; the coordinator thread
    // participates in every parallel phase, so N configured threads
    // means N - 1 spawned workers, and never more than there are
    // server partitions to run.
    unsigned spawn = std::min(threads_ - 1, servers - 1);
    workers_.reserve(spawn);
    for (unsigned i = 0; i < spawn; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

Coordinator::~Coordinator()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
Coordinator::post(unsigned dst, Tick when, std::function<void()> fn,
                  Event::Priority pri, std::string what)
{
    panic_if(dst >= queues_.size(), "post to unknown partition ",
             dst);
    unsigned src = currentPartitionOf(&sim_);
    if (!inParallel_.load(std::memory_order_relaxed) || dst == src) {
        // Setup code, phase A control, or a same-partition send:
        // single-threaded with respect to the destination queue, so
        // a direct schedule is safe and deterministic.
        auto *ev = new OneShotEvent(std::move(fn), std::move(what),
                                    pri);
        queue(dst).schedule(ev, when);
        return;
    }
    panic_if(src == 0, "control partition posted cross-partition "
                       "during the parallel phase");
    Tick horizon = queue(src).curTick() + lookahead_;
    panic_if(when < horizon, "cross-partition post '", what,
             "' at ", when, " violates lookahead horizon ", horizon);
    Outbox &ob = outboxes_[src];
    ob.msgs.push_back(Msg{when, pri, src, ob.nextSeq++, dst,
                          std::move(fn), std::move(what)});
}

void
Coordinator::run(Tick limit)
{
    while (true) {
        Tick gm = maxTick;
        for (auto *q : queues_)
            gm = std::min(gm, q->nextTick());
        if (gm > limit || gm == maxTick)
            break;
        Tick w = gm + lookahead_ - 1;
        if (w < gm) // overflow
            w = maxTick;
        w = std::min(w, limit);
        windowEnd_ = w;
        {
            // Phase A: control runs the window serially. It may
            // touch parked server state and schedule directly into
            // any queue; determinism follows from serial execution.
            PartitionScope ctl(sim_, 0);
            queues_[0]->run(w);
        }
        // Phase B: server partitions run the same window in
        // parallel; cross-partition effects buffer in outboxes.
        runParallel(w);
        flush();
        ++rounds_;
    }
    if (limit != maxTick) {
        // Park every queue exactly at the limit so idle partitions
        // observe up-to-date time (the run-to-drain fix in
        // EventQueue::run does the same for each queue).
        for (unsigned p = 0; p < queues_.size(); ++p) {
            PartitionScope scope(sim_, p);
            queues_[p]->run(limit);
        }
    }
    syncCounters();
}

void
Coordinator::runParallel(Tick window)
{
    unsigned servers = unsigned(queues_.size()) - 1;
    phaseLimit_.store(window, std::memory_order_relaxed);
    if (threads_ == 1 || servers == 1) {
        inParallel_.store(true, std::memory_order_relaxed);
        for (unsigned p = 1; p <= servers; ++p) {
            PartitionScope scope(sim_, p);
            queues_[p]->run(window);
        }
        inParallel_.store(false, std::memory_order_relaxed);
        return;
    }
    pending_.store(servers, std::memory_order_relaxed);
    inParallel_.store(true, std::memory_order_relaxed);
    // The release store on nextPart_ publishes the window limit and
    // all queue state written since the last round; workers claim
    // partitions with an acquire RMW on it.
    nextPart_.store(1, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++phaseSeq_;
    }
    cv_.notify_all();
    workLoop();
    {
        std::unique_lock<std::mutex> lk(mu_);
        doneCv_.wait(lk, [this] {
            return pending_.load(std::memory_order_acquire) == 0;
        });
    }
    inParallel_.store(false, std::memory_order_relaxed);
}

void
Coordinator::workLoop()
{
    while (true) {
        unsigned p = nextPart_.fetch_add(1, std::memory_order_acquire);
        if (p >= queues_.size())
            return;
        {
            PartitionScope scope(sim_, p);
            queues_[p]->run(phaseLimit_.load(std::memory_order_relaxed));
        }
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lk(mu_);
            doneCv_.notify_all();
        }
    }
}

void
Coordinator::workerMain()
{
    std::uint64_t seen = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [&] { return stop_ || phaseSeq_ != seen; });
            if (stop_)
                return;
            seen = phaseSeq_;
        }
        workLoop();
    }
}

void
Coordinator::flush()
{
    auto &all = flushScratch_;
    all.clear();
    for (auto &ob : outboxes_) {
        std::move(ob.msgs.begin(), ob.msgs.end(),
                  std::back_inserter(all));
        ob.msgs.clear();
    }
    if (all.empty())
        return;
    // (when, pri, src, seq) is a total order — src/seq break ties —
    // so the merged delivery order, and with it every destination
    // queue's insertion sequence numbers, is independent of thread
    // count and arrival interleaving.
    std::sort(all.begin(), all.end(),
              [](const Msg &a, const Msg &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.pri != b.pri)
                      return a.pri < b.pri;
                  if (a.src != b.src)
                      return a.src < b.src;
                  return a.seq < b.seq;
              });
    for (auto &m : all) {
        panic_if(m.when <= windowEnd_, "mailbox message '", m.what,
                 "' lands at ", m.when, " inside the closed window "
                 "ending ", windowEnd_);
        auto *ev = new OneShotEvent(std::move(m.fn),
                                    std::move(m.what), m.pri);
        queue(m.dst).schedule(ev, m.when);
        ++messages_;
    }
    all.clear();
}

void
Coordinator::syncCounters()
{
    // Deterministic, single-threaded metric updates: worker queues
    // carry no compaction hooks (the control queue's hook fires in
    // phase A, which is serial); their counts merge here, after the
    // final barrier.
    roundsCtr_->inc(rounds_ - roundsSynced_);
    roundsSynced_ = rounds_;
    messagesCtr_->inc(messages_ - messagesSynced_);
    messagesSynced_ = messages_;
    std::uint64_t comp = 0;
    for (const auto &q : ownedQueues_)
        comp += q->compactions();
    compactionsCtr_->inc(comp - compactionsSynced_);
    compactionsSynced_ = comp;
}

} // namespace psim

void
Simulation::enablePartitions(unsigned servers, psim::Params params)
{
    panic_if(psim_ != nullptr, "partitions already enabled");
    panic_if(eventq_.curTick() != 0 || !eventq_.empty(),
             "enablePartitions must run before any simulation "
             "activity");
    // Registrations from worker threads land in the registering
    // partition's lane; exports stay name-ordered and byte-stable.
    metrics_.shard(servers + 1, [this] { return currentPartition(); });
    psim_ = std::make_unique<psim::Coordinator>(*this, servers,
                                                params);
}

} // namespace bmhive

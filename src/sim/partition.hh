/**
 * @file
 * Parallel simulation core: per-server event partitions with
 * conservative lookahead.
 *
 * The simulation is split into partition 0 (the "control"
 * partition: fleet controller, network fabric, block service,
 * benchmark pumps) plus one partition per base server. Each
 * partition has its own EventQueue; a coordinator advances them in
 * bounded rounds:
 *
 *   globalMin = min over all queues of nextTick()
 *   window    = [globalMin, min(globalMin + L - 1, limit)]
 *
 * where L is the lookahead — the smallest modelled latency any
 * cross-partition interaction can have (a PCIe hop; fabric RTTs
 * and block-fabric legs are far larger). Phase A runs the control
 * queue through the window serially; control code may touch parked
 * server state and schedule into any queue directly, which stays
 * deterministic because phase A is single-threaded. Phase B runs
 * all server partitions through the same window in parallel;
 * cross-partition effects must go through post(), which buffers
 * them in per-source outboxes. Any message sent from inside the
 * window carries at least L of modelled delay, so it lands strictly
 * after the window and no partition can miss an incoming event it
 * should already have processed — the classic conservative
 * (Chandy–Misra style) argument.
 *
 * Determinism: after the round barrier, buffered messages are
 * drained in (when, priority, source partition, per-source
 * sequence) order, never thread arrival order, so the insertion
 * sequence numbers each destination queue assigns — and therefore
 * same-tick tie-breaking — are identical for any thread count.
 */

#ifndef BMHIVE_SIM_PARTITION_HH
#define BMHIVE_SIM_PARTITION_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/random.hh"
#include "base/units.hh"
#include "sim/eventq.hh"

namespace bmhive {

class Simulation;
class Counter;

namespace psim {

/** Tuning for the partitioned execution core. */
struct Params
{
    /** Execution threads for server partitions (>= 1). The
     *  coordinator thread participates, so N threads means N - 1
     *  spawned workers. */
    unsigned threads = 1;
    /** Conservative lookahead in ticks; 0 selects the modelled
     *  PCIe hop (paper::ioBondPciAccess), the smallest latency any
     *  cross-partition interaction carries. */
    Tick lookahead = 0;
};

/** A buffered cross-partition delivery. */
struct Msg
{
    Tick when;
    Event::Priority pri;
    /** Partition that sent the message. */
    unsigned src;
    /** Per-source sequence number; (src, seq) is a total order. */
    std::uint64_t seq;
    unsigned dst;
    std::function<void()> fn;
    std::string what;
};

/**
 * Owns the per-server queues, RNG shards, outboxes and worker pool
 * of a partitioned simulation, and runs the round loop.
 */
class Coordinator
{
  public:
    /**
     * @param servers number of server partitions (1..N); partition
     * 0 aliases the simulation's classic event queue.
     */
    Coordinator(Simulation &sim, unsigned servers, Params params);
    ~Coordinator();

    Coordinator(const Coordinator &) = delete;
    Coordinator &operator=(const Coordinator &) = delete;

    /** Total partitions including control partition 0. */
    unsigned partitions() const { return unsigned(queues_.size()); }

    EventQueue &queue(unsigned p) { return *queues_.at(p); }
    const EventQueue &
    queue(unsigned p) const
    {
        return *queues_.at(p);
    }

    /** RNG shard for server partition @p p (>= 1). */
    Rng &rng(unsigned p) { return *rngs_.at(p - 1); }

    Tick lookahead() const { return lookahead_; }

    /**
     * Deliver @p fn in partition @p dst at tick @p when. Outside
     * the parallel phase this schedules directly (single-threaded,
     * deterministic). From inside the parallel phase the send is
     * buffered in the executing partition's outbox and must respect
     * the lookahead contract: when >= sender's curTick + L.
     */
    void post(unsigned dst, Tick when, std::function<void()> fn,
              Event::Priority pri, std::string what);

    /** Run the round loop until every queue is past @p limit. */
    void run(Tick limit);

    std::uint64_t rounds() const { return rounds_; }
    std::uint64_t messages() const { return messages_; }

  private:
    void runParallel(Tick window);
    void flush();
    void workLoop();
    void workerMain();
    void syncCounters();

    struct Outbox
    {
        std::vector<Msg> msgs;
        std::uint64_t nextSeq = 0;
    };

    Simulation &sim_;
    Tick lookahead_;
    unsigned threads_;

    /** queues_[0] aliases the simulation's control queue; the rest
     *  are owned server-partition queues. */
    std::vector<EventQueue *> queues_;
    std::vector<std::unique_ptr<EventQueue>> ownedQueues_;
    /** RNG shard per server partition, seeded from the root seed
     *  and the partition id (stable across thread counts). */
    std::vector<std::unique_ptr<Rng>> rngs_;
    /** One outbox per partition, touched only by its own thread
     *  during the parallel phase. */
    std::vector<Outbox> outboxes_;

    /** End of the current/last closed window (inclusive). */
    Tick windowEnd_ = 0;
    std::atomic<bool> inParallel_{false};
    std::atomic<Tick> phaseLimit_{0};
    std::atomic<unsigned> nextPart_{0};
    std::atomic<unsigned> pending_{0};

    std::mutex mu_;
    std::condition_variable cv_;
    std::condition_variable doneCv_;
    std::uint64_t phaseSeq_ = 0;
    bool stop_ = false;
    std::vector<std::thread> workers_;

    std::uint64_t rounds_ = 0;
    std::uint64_t messages_ = 0;
    std::uint64_t roundsSynced_ = 0;
    std::uint64_t messagesSynced_ = 0;
    std::uint64_t compactionsSynced_ = 0;
    Counter *roundsCtr_ = nullptr;
    Counter *messagesCtr_ = nullptr;
    Counter *compactionsCtr_ = nullptr;

    /** Scratch buffer reused by flush(). */
    std::vector<Msg> flushScratch_;
};

/**
 * Thread-local execution/construction context. SimObjects capture
 * the active partition at construction; the round loop installs
 * the executing partition so Simulation::eventq()/now() resolve to
 * the right queue from worker threads.
 */
struct ExecCtx
{
    const void *sim = nullptr;
    unsigned part = 0;
    /** Optional shared partition cell: objects constructed under a
     *  cell-scoped context resolve their partition through it, so a
     *  whole guest re-homes atomically on migration. */
    const unsigned *cell = nullptr;
};

/** Partition of the innermost scope for @p sim (0 if none). */
unsigned currentPartitionOf(const void *sim);

/** Partition cell of the innermost scope for @p sim, if any. */
const unsigned *currentCellOf(const void *sim);

/**
 * RAII partition context. Wrap component construction (and the
 * coordinator wraps phase execution) so partition affinity is
 * captured without threading an argument through every ctor.
 */
class PartitionScope
{
  public:
    PartitionScope(Simulation &sim, unsigned part);
    /** Cell-scoped: partition resolves through @p cell (falling
     *  back to @p part when @p cell is null). */
    PartitionScope(Simulation &sim, const unsigned *cell,
                   unsigned part);
    ~PartitionScope();

    PartitionScope(const PartitionScope &) = delete;
    PartitionScope &operator=(const PartitionScope &) = delete;

  private:
    ExecCtx prev_;
};

} // namespace psim
} // namespace bmhive

#endif // BMHIVE_SIM_PARTITION_HH

#include "sim/eventq.hh"

#include "base/logging.hh"

namespace bmhive {

Event::~Event()
{
    panic_if(scheduled_,
             "event '", name(), "' destroyed while scheduled");
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    panic_if(ev == nullptr, "scheduling a null event");
    panic_if(ev->scheduled_,
             "event '", ev->name(), "' is already scheduled");
    panic_if(when < curTick_,
             "scheduling event '", ev->name(), "' in the past: ",
             when, " < ", curTick_);
    ev->when_ = when;
    ev->sequence_ = nextSeq_++;
    ev->scheduled_ = true;
    ev->queue_ = this;
    heap_.push_back(Entry{when, ev->priority_, ev->sequence_, ev});
    std::push_heap(heap_.begin(), heap_.end(), heapCmp);
    ++liveCount_;
}

void
EventQueue::deschedule(Event *ev)
{
    panic_if(ev == nullptr, "descheduling a null event");
    panic_if(!ev->scheduled_,
             "event '", ev->name(), "' is not scheduled");
    panic_if(ev->queue_ != this,
             "event '", ev->name(),
             "' descheduled through a foreign queue");
    // Lazy deletion: the heap entry stays behind, keyed by its
    // sequence number, and skim() drops it without dereferencing
    // the event — which may be destroyed as soon as we return.
    ev->scheduled_ = false;
    ev->queue_ = nullptr;
    staleSeqs_.insert(ev->sequence_);
    --liveCount_;
    maybeCompact();
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::skim()
{
    // Every deschedule (including the one inside reschedule)
    // records its entry's sequence number, so membership alone
    // decides staleness; the Event* in a stale entry is never
    // touched.
    while (!heap_.empty() && staleSeqs_.erase(heap_.front().seq)) {
        std::pop_heap(heap_.begin(), heap_.end(), heapCmp);
        heap_.pop_back();
    }
}

void
EventQueue::maybeCompact()
{
    // Stale entries buried below the top survive skim() until the
    // heap shrinks down to them, so a reschedule-heavy timer (the
    // adaptive poll governor re-arms constantly) would otherwise
    // grow heap_ and staleSeqs_ without bound relative to live
    // events. Rebuilding is O(n) and amortizes to O(1) per
    // deschedule at the 50% threshold.
    if (staleSeqs_.size() < compactMinStale ||
        staleSeqs_.size() * 2 < heap_.size())
        return;
    std::erase_if(heap_, [this](const Entry &e) {
        return staleSeqs_.erase(e.seq) != 0;
    });
    staleSeqs_.clear();
    std::make_heap(heap_.begin(), heap_.end(), heapCmp);
    ++compactions_;
    if (onCompact_)
        onCompact_();
}

Tick
EventQueue::nextTick() const
{
    auto *self = const_cast<EventQueue *>(this);
    self->skim();
    return heap_.empty() ? maxTick : heap_.front().when;
}

bool
EventQueue::step()
{
    skim();
    if (heap_.empty())
        return false;
    Entry e = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), heapCmp);
    heap_.pop_back();
    panic_if(e.when < curTick_, "time went backwards");
    if (e.when != curTick_) {
        curTick_ = e.when;
        sameTickCount_ = 0;
    }
    // A zero-latency event cycle would freeze simulated time while
    // burning host CPU forever. No legitimate model comes close to
    // this many events in one tick; treat it as a modelling bug.
    panic_if(++sameTickCount_ > sameTickLimit,
             "event livelock: ", sameTickLimit,
             " events at tick ", curTick_, "; last: '",
             e.ev->name(), "'");
    e.ev->scheduled_ = false;
    e.ev->queue_ = nullptr;
    --liveCount_;
    ++processed_;
    e.ev->process();
    return true;
}

void
EventQueue::run(Tick limit)
{
    while (true) {
        skim();
        if (heap_.empty()) {
            // A drained queue still owes the caller the full
            // window: fixed-window pumps (and parked partitions)
            // read curTick afterwards and must see the limit, not
            // the tick of whatever event happened to run last.
            if (limit != maxTick && limit > curTick_)
                curTick_ = limit;
            return;
        }
        if (heap_.front().when > limit) {
            curTick_ = limit;
            return;
        }
        step();
    }
}

} // namespace bmhive

#include "sim/eventq.hh"

#include "base/logging.hh"

namespace bmhive {

Event::~Event()
{
    panic_if(scheduled_,
             "event '", name(), "' destroyed while scheduled");
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    panic_if(ev == nullptr, "scheduling a null event");
    panic_if(ev->scheduled_,
             "event '", ev->name(), "' is already scheduled");
    panic_if(when < curTick_,
             "scheduling event '", ev->name(), "' in the past: ",
             when, " < ", curTick_);
    ev->when_ = when;
    ev->sequence_ = nextSeq_++;
    ev->scheduled_ = true;
    heap_.push(Entry{when, ev->priority_, ev->sequence_, ev});
    ++liveCount_;
}

void
EventQueue::deschedule(Event *ev)
{
    panic_if(ev == nullptr, "descheduling a null event");
    panic_if(!ev->scheduled_,
             "event '", ev->name(), "' is not scheduled");
    // Lazy deletion: the heap entry stays behind, keyed by its
    // sequence number, and skim() drops it without dereferencing
    // the event — which may be destroyed as soon as we return.
    ev->scheduled_ = false;
    staleSeqs_.insert(ev->sequence_);
    --liveCount_;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::skim()
{
    // Every deschedule (including the one inside reschedule)
    // records its entry's sequence number, so membership alone
    // decides staleness; the Event* in a stale entry is never
    // touched.
    while (!heap_.empty() && staleSeqs_.erase(heap_.top().seq))
        heap_.pop();
}

Tick
EventQueue::nextTick() const
{
    auto *self = const_cast<EventQueue *>(this);
    self->skim();
    return heap_.empty() ? maxTick : heap_.top().when;
}

bool
EventQueue::step()
{
    skim();
    if (heap_.empty())
        return false;
    Entry e = heap_.top();
    heap_.pop();
    panic_if(e.when < curTick_, "time went backwards");
    if (e.when != curTick_) {
        curTick_ = e.when;
        sameTickCount_ = 0;
    }
    // A zero-latency event cycle would freeze simulated time while
    // burning host CPU forever. No legitimate model comes close to
    // this many events in one tick; treat it as a modelling bug.
    panic_if(++sameTickCount_ > sameTickLimit,
             "event livelock: ", sameTickLimit,
             " events at tick ", curTick_, "; last: '",
             e.ev->name(), "'");
    e.ev->scheduled_ = false;
    --liveCount_;
    ++processed_;
    e.ev->process();
    return true;
}

void
EventQueue::run(Tick limit)
{
    while (true) {
        skim();
        if (heap_.empty())
            return;
        if (heap_.top().when > limit) {
            curTick_ = limit;
            return;
        }
        step();
    }
}

} // namespace bmhive

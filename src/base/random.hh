/**
 * @file
 * Deterministic, seedable random source used by every stochastic
 * model in the simulator. All randomness must flow through Rng so
 * that a run is reproducible from its seed.
 */

#ifndef BMHIVE_BASE_RANDOM_HH
#define BMHIVE_BASE_RANDOM_HH

#include <cmath>
#include <cstdint>
#include <random>

namespace bmhive {

/**
 * Thin wrapper around std::mt19937_64 with the distributions the
 * models need. Header-only for inlining in hot simulation loops.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

    /** Re-seed; resets the stream deterministically. */
    void seed(std::uint64_t s) { engine_.seed(s); }

    /** Uniform in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Uniform real in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        return std::uniform_int_distribution<std::uint64_t>(lo, hi)(
            engine_);
    }

    /** Normal with the given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Exponential with the given mean (= 1/lambda). */
    double
    exponential(double mean)
    {
        return std::exponential_distribution<double>(1.0 / mean)(engine_);
    }

    /**
     * Log-normal parameterized by the mean and sigma of the
     * underlying normal. Used for heavy-tailed service times.
     */
    double
    lognormal(double mu, double sigma)
    {
        return std::lognormal_distribution<double>(mu, sigma)(engine_);
    }

    /**
     * Pareto (Type I) with scale @p xm and shape @p alpha; heavy
     * tailed for alpha close to 1. Used for fleet exit-rate and
     * preemption distributions whose paper data is tail-reported.
     */
    double
    pareto(double xm, double alpha)
    {
        double u = uniform();
        if (u <= 0.0)
            u = 1e-18;
        return xm / std::pow(u, 1.0 / alpha);
    }

    /** Bernoulli trial. */
    bool chance(double p) { return uniform() < p; }

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace bmhive

#endif // BMHIVE_BASE_RANDOM_HH

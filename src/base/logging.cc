#include "base/logging.hh"

#include <iostream>

namespace bmhive {

Logger &
Logger::global()
{
    static Logger logger;
    return logger;
}

void
Logger::setTickSource(std::function<Tick()> src, const void *owner)
{
    tickSource_ = std::move(src);
    tickOwner_ = owner;
}

void
Logger::clearTickSource(const void *owner)
{
    if (tickOwner_ != owner)
        return; // a newer simulation took over; leave it installed
    tickSource_ = nullptr;
    tickOwner_ = nullptr;
}

void
Logger::debugEnable(const std::string &component)
{
    debugSet_.insert(component);
}

void
Logger::debugDisable(const std::string &component)
{
    debugSet_.erase(component);
}

bool
Logger::debugEnabled(const std::string &component) const
{
    if (debugSet_.empty()) {
        // Legacy behaviour: the verbosity knob alone decides.
        return static_cast<int>(LogLevel::Debug) <=
               static_cast<int>(verbosity_);
    }
    for (const auto &entry : debugSet_) {
        if (entry.empty())
            return true; // wildcard
        if (component == entry)
            return true;
        // Dot-boundary prefix: "a.b" enables "a.b.c", not "a.bc".
        if (component.size() > entry.size() &&
            component.compare(0, entry.size(), entry) == 0 &&
            component[entry.size()] == '.')
            return true;
    }
    return false;
}

void
Logger::print(LogLevel lvl, const std::string &component,
              const std::string &msg)
{
    if (lvl == LogLevel::Debug) {
        if (!debugEnabled(component))
            return;
    } else if (static_cast<int>(lvl) > static_cast<int>(verbosity_)) {
        return;
    }
    const char *prefix = "";
    switch (lvl) {
      case LogLevel::Panic:
        prefix = "panic: ";
        break;
      case LogLevel::Fatal:
        prefix = "fatal: ";
        break;
      case LogLevel::Warn:
        prefix = "warn: ";
        break;
      case LogLevel::Inform:
        prefix = "info: ";
        break;
      case LogLevel::Debug:
        prefix = "debug: ";
        break;
    }
    std::ostream &os = stream_ ? *stream_ : std::cerr;
    std::lock_guard<std::mutex> lk(printMu_);
    os << prefix;
    if (tickSource_)
        os << "[" << tickSource_() << "] ";
    if (!component.empty())
        os << component << ": ";
    os << msg << "\n";
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << msg << " (" << file << ":" << line << ")";
    if (Logger::global().throwOnDeath())
        throw PanicError(os.str());
    Logger::global().print(LogLevel::Panic, os.str());
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << msg << " (" << file << ":" << line << ")";
    if (Logger::global().throwOnDeath())
        throw FatalError(os.str());
    Logger::global().print(LogLevel::Fatal, os.str());
    std::exit(1);
}

} // namespace detail
} // namespace bmhive

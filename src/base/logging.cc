#include "base/logging.hh"

#include <iostream>

namespace bmhive {

Logger &
Logger::global()
{
    static Logger logger;
    return logger;
}

void
Logger::print(LogLevel lvl, const std::string &msg)
{
    if (static_cast<int>(lvl) > static_cast<int>(verbosity_))
        return;
    const char *prefix = "";
    switch (lvl) {
      case LogLevel::Panic:
        prefix = "panic: ";
        break;
      case LogLevel::Fatal:
        prefix = "fatal: ";
        break;
      case LogLevel::Warn:
        prefix = "warn: ";
        break;
      case LogLevel::Inform:
        prefix = "info: ";
        break;
      case LogLevel::Debug:
        prefix = "debug: ";
        break;
    }
    std::cerr << prefix << msg << "\n";
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << msg << " (" << file << ":" << line << ")";
    if (Logger::global().throwOnDeath())
        throw PanicError(os.str());
    Logger::global().print(LogLevel::Panic, os.str());
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << msg << " (" << file << ":" << line << ")";
    if (Logger::global().throwOnDeath())
        throw FatalError(os.str());
    Logger::global().print(LogLevel::Fatal, os.str());
    std::exit(1);
}

} // namespace detail
} // namespace bmhive

#include "base/token_bucket.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace bmhive {

TokenBucket::TokenBucket(double rate, double burst)
    : rate_(rate), burst_(burst), tokens_(burst)
{
    panic_if(rate < 0.0, "negative token rate: ", rate);
    panic_if(burst < 0.0, "negative burst: ", burst);
}

void
TokenBucket::refill(Tick now)
{
    if (now <= lastRefill_)
        return;
    double elapsed_sec = ticksToSec(now - lastRefill_);
    tokens_ = std::min(burst_, tokens_ + rate_ * elapsed_sec);
    lastRefill_ = now;
}

bool
TokenBucket::tryConsume(Tick now, double n)
{
    if (!limited())
        return true;
    refill(now);
    if (tokens_ >= n) {
        tokens_ -= n;
        return true;
    }
    return false;
}

Tick
TokenBucket::nextAvailable(Tick now, double n) const
{
    if (!limited())
        return now;
    // The token level is only meaningful at lastRefill_; when a
    // pacing consumer has already reserved tokens into the future
    // (lastRefill_ > now), new work queues behind that reservation.
    Tick base = now > lastRefill_ ? now : lastRefill_;
    double tokens = tokens_;
    if (base > lastRefill_) {
        double elapsed_sec = ticksToSec(base - lastRefill_);
        tokens = std::min(burst_, tokens + rate_ * elapsed_sec);
    }
    if (tokens >= n)
        return base;
    double deficit = n - tokens;
    double wait_sec = deficit / rate_;
    return base + secToTicks(wait_sec) + 1;
}

void
TokenBucket::forceConsume(Tick now, double n)
{
    if (!limited())
        return;
    refill(now);
    tokens_ -= n;
}

double
TokenBucket::level(Tick now) const
{
    double tokens = tokens_;
    if (limited() && now > lastRefill_) {
        double elapsed_sec = ticksToSec(now - lastRefill_);
        tokens = std::min(burst_, tokens + rate_ * elapsed_sec);
    }
    return tokens;
}

} // namespace bmhive

/**
 * @file
 * Logging and error-reporting helpers, modelled after gem5's
 * base/logging.hh.
 *
 * panic()  - an internal invariant was violated: a bug in this
 *            library. Aborts.
 * fatal()  - the simulation cannot continue due to a user error
 *            (bad configuration, invalid arguments). Exits(1).
 * warn()   - something is imprecise but the run can continue.
 * inform() - status information with no negative connotation.
 */

#ifndef BMHIVE_BASE_LOGGING_HH
#define BMHIVE_BASE_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <set>
#include <sstream>
#include <string>

#include "base/units.hh"

namespace bmhive {

/** Severity of a log message. */
enum class LogLevel { Panic, Fatal, Warn, Inform, Debug };

/**
 * Global log configuration. Tests can redirect or silence output;
 * panic/fatal behaviour can be turned into exceptions so that death
 * paths are unit-testable.
 */
class Logger
{
  public:
    /** Returns the process-wide logger. */
    static Logger &global();

    /** Minimum level that is printed (Inform by default). */
    void setVerbosity(LogLevel lvl) { verbosity_ = lvl; }
    LogLevel verbosity() const { return verbosity_; }

    /**
     * When true, panic()/fatal() throw PanicError/FatalError instead
     * of terminating the process. Used by the test suite.
     */
    void setThrowOnDeath(bool t) { throwOnDeath_ = t; }
    bool throwOnDeath() const { return throwOnDeath_; }

    /**
     * Source of the current simulation Tick, used to prefix every
     * log line with simulated time. A Simulation installs itself on
     * construction (@p owner disambiguates nested simulations) and
     * clears on destruction.
     */
    void setTickSource(std::function<Tick()> src, const void *owner);
    void clearTickSource(const void *owner);

    /**
     * Per-component Debug filtering. When the enable set is empty,
     * Debug messages fall back to the verbosity gate (legacy
     * behaviour). When non-empty, a Debug message prints iff its
     * component matches an enabled entry exactly or an entry is a
     * dot-separated prefix of it (enabling "server.guest0" also
     * enables "server.guest0.iobond"). The empty-string entry
     * enables everything.
     */
    void debugEnable(const std::string &component);
    void debugDisable(const std::string &component);
    void debugClear() { debugSet_.clear(); }
    bool debugEnabled(const std::string &component) const;

    /** Redirect output (tests); null restores the default stream. */
    void setStream(std::ostream *os) { stream_ = os; }

    /** Emit one formatted message with no component attribution. */
    void print(LogLevel lvl, const std::string &msg)
    {
        print(lvl, std::string(), msg);
    }

    /** Emit one formatted message from @p component. */
    void print(LogLevel lvl, const std::string &component,
               const std::string &msg);

  private:
    LogLevel verbosity_ = LogLevel::Inform;
    bool throwOnDeath_ = false;
    std::function<Tick()> tickSource_;
    const void *tickOwner_ = nullptr;
    std::set<std::string> debugSet_;
    std::ostream *stream_ = nullptr;
    /** Keeps whole lines intact when partitioned-simulation worker
     *  threads emit concurrently. Configuration knobs stay
     *  unguarded: tests flip them only while single-threaded. */
    std::mutex printMu_;
};

/** Exception thrown by panic() when throw-on-death is enabled. */
struct PanicError : std::runtime_error
{
    explicit PanicError(const std::string &what)
        : std::runtime_error(what) {}
};

/** Exception thrown by fatal() when throw-on-death is enabled. */
struct FatalError : std::runtime_error
{
    explicit FatalError(const std::string &what)
        : std::runtime_error(what) {}
};

namespace detail {

/** Stream-concatenate a variadic pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

} // namespace detail

/** Report an internal bug and abort (or throw PanicError in tests). */
#define panic(...)                                                     \
    ::bmhive::detail::panicImpl(__FILE__, __LINE__,                    \
                                ::bmhive::detail::concat(__VA_ARGS__))

/** Report an unrecoverable user error and exit (or throw in tests). */
#define fatal(...)                                                     \
    ::bmhive::detail::fatalImpl(__FILE__, __LINE__,                    \
                                ::bmhive::detail::concat(__VA_ARGS__))

/** panic() if the condition does not hold. */
#define panic_if(cond, ...)                                            \
    do {                                                               \
        if (cond)                                                      \
            panic(__VA_ARGS__);                                        \
    } while (0)

/** fatal() if the condition does not hold. */
#define fatal_if(cond, ...)                                            \
    do {                                                               \
        if (cond)                                                      \
            fatal(__VA_ARGS__);                                        \
    } while (0)

/** Non-fatal diagnostics. */
template <typename... Args>
void
warn(Args &&...args)
{
    Logger::global().print(LogLevel::Warn,
                           detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
inform(Args &&...args)
{
    Logger::global().print(LogLevel::Inform,
                           detail::concat(std::forward<Args>(args)...));
}

/**
 * Component-attributed debug message; printed only when the
 * component is enabled (see Logger::debugEnable). SimObjects pass
 * their hierarchical name so whole subtrees can be switched on.
 */
template <typename... Args>
void
debug(const std::string &component, Args &&...args)
{
    Logger &log = Logger::global();
    if (!log.debugEnabled(component))
        return;
    log.print(LogLevel::Debug, component,
              detail::concat(std::forward<Args>(args)...));
}

} // namespace bmhive

#endif // BMHIVE_BASE_LOGGING_HH

/**
 * @file
 * Statistics collection: running summary statistics, exact
 * percentile estimation over recorded samples, fixed-bucket
 * histograms, and a latency recorder keyed on Ticks.
 */

#ifndef BMHIVE_BASE_STATS_HH
#define BMHIVE_BASE_STATS_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "base/units.hh"

namespace bmhive {

/**
 * Running mean / variance / min / max without storing samples.
 * Welford's online algorithm; numerically stable.
 */
class SummaryStats
{
  public:
    void record(double x);
    void reset();

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Stores every sample and computes exact quantiles on demand.
 * Used for the paper's p99 / p99.9 reports (Figs 1 and 11) where
 * tail fidelity matters more than memory.
 */
class SampleSet
{
  public:
    void record(double x);
    void reset();

    std::size_t count() const { return samples_.size(); }
    double mean() const;

    /**
     * Exact quantile by the nearest-rank method.
     * @param q in [0, 1], e.g. 0.999 for the 99.9th percentile.
     */
    double percentile(double q) const;

    double min() const;
    double max() const;

    const std::vector<double> &samples() const { return samples_; }

  private:
    /** Sorts lazily; const because sorting preserves the multiset. */
    void ensureSorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
};

/**
 * Fixed-width bucket histogram over [lo, hi) with overflow and
 * underflow buckets.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void record(double x);
    void reset();

    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }
    double bucketLow(std::size_t i) const;
    double bucketHigh(std::size_t i) const;

    /**
     * Nearest-rank quantile estimate from the buckets: the upper
     * edge of the bucket holding the rank-q sample (conservative by
     * at most one bucket width). Underflow resolves to lo, overflow
     * to hi. @param q in [0, 1].
     */
    double percentile(double q) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * Convenience recorder for request latencies measured in Ticks,
 * reporting microseconds (the unit used throughout the paper).
 */
class LatencyRecorder
{
  public:
    void
    record(Tick latency)
    {
        set_.record(ticksToUs(latency));
    }

    std::size_t count() const { return set_.count(); }
    double meanUs() const { return set_.mean(); }
    double p50Us() const { return set_.percentile(0.50); }
    double p90Us() const { return set_.percentile(0.90); }
    double p99Us() const { return set_.percentile(0.99); }
    double p999Us() const { return set_.percentile(0.999); }
    double maxUs() const { return set_.max(); }
    const SampleSet &samples() const { return set_; }
    void reset() { set_.reset(); }

  private:
    SampleSet set_;
};

/**
 * Monotonic named counter, e.g. packets forwarded or VM exits.
 */
class Counter
{
  public:
    void inc(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Instantaneous level with min/max watermarks, e.g. queue depth or
 * in-flight I/O. Unlike Counter it can move both directions.
 */
class Gauge
{
  public:
    void set(double v);
    /** Signed adjustment, e.g. add(1) on submit, add(-1) on done. */
    void add(double delta) { set(value_ + delta); }

    double value() const { return value_; }
    /** Lowest value seen since construction or reset(). */
    double minWatermark() const { return seen_ ? min_ : 0.0; }
    /** Highest value seen since construction or reset(). */
    double maxWatermark() const { return seen_ ? max_ : 0.0; }
    std::uint64_t updates() const { return updates_; }

    /** Keeps the current level; watermarks restart from it. */
    void reset();

  private:
    double value_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    bool seen_ = false;
    std::uint64_t updates_ = 0;
};

/**
 * Time-weighted average of a piecewise-constant signal: each
 * record(v, now) holds v from now until the next record. Used for
 * averages where duration matters (mean queue depth, mean poll
 * utilization) rather than per-sample means.
 */
class TimeWeightedAverage
{
  public:
    /** The signal takes value @p v from @p now on. */
    void record(double v, Tick now);

    /** Integral / elapsed over [first record, now]. */
    double average(Tick now) const;

    double current() const { return value_; }
    void reset();

  private:
    double value_ = 0.0;
    double weighted_ = 0.0; ///< integral of value dt so far
    Tick start_ = 0;
    Tick last_ = 0;
    bool started_ = false;
};

} // namespace bmhive

#endif // BMHIVE_BASE_STATS_HH

/**
 * @file
 * Token-bucket rate limiter. The cloud limits every guest's network
 * (packets per second and bits per second) and storage (IOPS and
 * bytes per second); see paper section 4.1. Each limit is one
 * TokenBucket; composite limits pair two buckets.
 */

#ifndef BMHIVE_BASE_TOKEN_BUCKET_HH
#define BMHIVE_BASE_TOKEN_BUCKET_HH

#include <cstdint>

#include "base/units.hh"

namespace bmhive {

/**
 * Classic token bucket in simulated time. Tokens accrue at @c rate
 * tokens per second of simulated time up to @c burst tokens.
 * A consumer asks for @c n tokens at tick @c now; if available they
 * are consumed, otherwise the call reports the earliest tick at
 * which the request could succeed.
 */
class TokenBucket
{
  public:
    /**
     * @param rate   tokens per simulated second (0 = unlimited)
     * @param burst  bucket depth in tokens
     */
    TokenBucket(double rate, double burst);

    /** An unlimited bucket (every tryConsume succeeds). */
    static TokenBucket unlimited() { return TokenBucket(0.0, 0.0); }

    /**
     * Attempt to take @p n tokens at time @p now.
     * @return true if the tokens were consumed.
     */
    bool tryConsume(Tick now, double n);

    /**
     * Earliest tick at which @p n tokens will be available, assuming
     * no other consumption. Returns @p now if available already.
     */
    Tick nextAvailable(Tick now, double n) const;

    /**
     * Consume @p n tokens unconditionally, driving the level
     * negative if needed; the debt delays future consumers. Useful
     * for modelling pacing of oversized requests.
     */
    void forceConsume(Tick now, double n);

    double rate() const { return rate_; }
    double burst() const { return burst_; }
    bool limited() const { return rate_ > 0.0; }

    /** Current token level (after refill to @p now). */
    double level(Tick now) const;

  private:
    /** Refill tokens for the elapsed time. */
    void refill(Tick now);

    double rate_;      ///< tokens per simulated second
    double burst_;     ///< max tokens
    double tokens_;    ///< current level (may go negative)
    Tick lastRefill_ = 0;
};

} // namespace bmhive

#endif // BMHIVE_BASE_TOKEN_BUCKET_HH

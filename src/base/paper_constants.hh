/**
 * @file
 * Every number the paper publishes, as a named constant, with the
 * section it comes from. Models must use these constants rather
 * than re-stating magic numbers.
 *
 * Constants marked CALIBRATED are *not* in the paper: they are
 * model parameters chosen so the reproduced tables/figures land in
 * the paper's reported bands (see EXPERIMENTS.md).
 */

#ifndef BMHIVE_BASE_PAPER_CONSTANTS_HH
#define BMHIVE_BASE_PAPER_CONSTANTS_HH

#include "base/units.hh"

namespace bmhive {
namespace paper {

// --- Section 3.4.3: IO-Bond implementation ---

/** One PCI read/write from bm-guest to the IO-Bond front-end. */
constexpr Tick ioBondPciAccess = usToTicks(0.8);
/** The second hop, IO-Bond to its mailbox registers. */
constexpr Tick ioBondMailboxAccess = usToTicks(0.8);
/** "A typical PCI access emulating from bm-hypervisor takes
 *  1.6 us constantly." */
constexpr Tick ioBondEmulatedAccess =
    ioBondPciAccess + ioBondMailboxAccess;
/** Section 6: ASIC implementation would cut 0.8 us to 0.2 us. */
constexpr Tick ioBondAsicPciAccess = usToTicks(0.2);

/** IO-Bond internal DMA throughput (~50 Gbps). */
constexpr double ioBondDmaGbps = 50.0;
/** PCIe x4 per emulated virtio device (32 Gbps). */
constexpr double ioBondDeviceLinkGbps = 32.0;
/** PCIe x8 backing interface to the bm-hypervisor. */
constexpr double ioBondBackendLinkGbps = 64.0;
/** The server's shared NIC toward the cloud (100 Gbit/s). */
constexpr double serverNicGbps = 100.0;

// --- Section 2.1: virtualization overhead ---

/** "It takes about 10 us for the KVM hypervisor to handle an
 *  event" (one VM exit). */
constexpr Tick vmExitCost = usToTicks(10);
/** Exits/s/vCPU where overhead becomes observable. */
constexpr double observableExitRate = 5000.0;

// --- Section 4.1: instance rate limits ---

constexpr double netLimitPps = 4.0e6;
constexpr double netLimitGbps = 10.0;
constexpr double storageLimitIops = 25.0e3;
constexpr double storageLimitBytesPerSec = 300.0e6;

// --- Section 4.3: measured I/O results (targets, not inputs) ---

/** Achieved PPS for both guests (Fig. 9 plateau). */
constexpr double achievedPps = 3.2e6;
/** Uncapped BM-Hive PPS. */
constexpr double uncappedBmPps = 16.0e6;
/** TCP throughput achieved (Gbit/s), bm vs vm. */
constexpr double tcpGbpsBm = 9.60;
constexpr double tcpGbpsVm = 9.59;
/** Local-SSD average latency for BM-Hive. */
constexpr Tick localSsdAvgLatency = usToTicks(60);

// --- Section 3.3 / Table 3: configuration ---

/** Max compute boards (= bm-guests) per BM-Hive server. */
constexpr unsigned maxComputeBoards = 16;
/** Base board CPU cores (16-core E5). */
constexpr unsigned baseBoardCores = 16;

// --- Section 3.5: cost efficiency ---

/** Conventional vm server: 2x 24-core (48HT) E5, 8HT reserved. */
constexpr unsigned vmServerTotalHt = 96;
constexpr unsigned vmServerReservedHt = 8;
constexpr unsigned vmServerSellableHt = 88;
/** BM-Hive same rack space: 8 boards x 32HT = 256HT sellable. */
constexpr unsigned bmHiveBoards = 8;
constexpr unsigned bmHiveHtPerBoard = 32;
/** Paper's TDP results (Watts per vCPU). */
constexpr double bmHiveWattsPerVcpu = 3.17;
constexpr double vmServerWattsPerVcpu = 3.06;
/** bm-guest sells 10% below a similarly configured vm-guest. */
constexpr double bmPriceDiscount = 0.10;

// --- Section 2.3: nested virtualization ---

/** Nested guest reaches ~80% of native CPU performance. */
constexpr double nestedCpuFraction = 0.80;
/** Nested I/O-intensive programs reach ~25% of native. */
constexpr double nestedIoFraction = 0.25;

// --- CALIBRATED model parameters (not from the paper) ---

/** vhost/virtio backend poll period (PMD spin loop granularity). */
constexpr Tick backendPollPeriod = usToTicks(2); // CALIBRATED
/** bm-hypervisor poll of IO-Bond mailbox/head registers. */
constexpr Tick bmPollPeriod = usToTicks(2); // CALIBRATED
/** Guest kernel-stack cost to send/receive one UDP packet. */
constexpr Tick kernelUdpPathCost = usToTicks(4.0); // CALIBRATED
/** DPDK userspace path cost per packet (kernel bypass). */
constexpr Tick dpdkPathCost = nsToTicks(120); // CALIBRATED
/** Backend per-packet processing cost (vhost-user PMD). */
constexpr Tick backendPerPacketCost = nsToTicks(150); // CALIBRATED
/** Guest interrupt service cost (MSI -> driver handler). */
constexpr Tick guestIrqCost = usToTicks(1.0); // CALIBRATED
/** VM virtual-interrupt injection cost (vm-guest only). */
constexpr Tick vmIrqInjectCost = usToTicks(2.0); // CALIBRATED
/** Extra CPU copy the vm-guest storage path performs per 4 KiB. */
constexpr Tick vmStorageCopyCost = usToTicks(30.0); // CALIBRATED
/** EPT-stretch factor for memory-intensive work in a VM. */
constexpr double eptMemoryStretch = 1.02; // CALIBRATED

// Shared poll-core scheduler (the section 3.5 density argument:
// poll cores are what the base board sells, so multiplexing
// backends over fewer of them is the cost lever).

/** DWRR quantum: work items one unit of weight earns per round. */
constexpr unsigned schedQuantum = 32; // CALIBRATED
/** Idle rounds on a core before the governor starts backing off. */
constexpr unsigned schedIdleRoundsBeforeBackoff = 16; // CALIBRATED
/** Backoff ceiling; one more idle round at the ceiling sleeps the
 *  core (no events at all until a doorbell wake). */
constexpr Tick schedMaxBackoff = usToTicks(64); // CALIBRATED
/** Doorbell-to-first-poll wake cost of a sleeping poll core
 *  (mailbox write observed + core leaving its pause loop). */
constexpr Tick schedWakeLatency = usToTicks(2); // CALIBRATED

} // namespace paper
} // namespace bmhive

#endif // BMHIVE_BASE_PAPER_CONSTANTS_HH

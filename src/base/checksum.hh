/**
 * @file
 * Checksum primitives for the end-to-end integrity layer: CRC32C
 * (the polynomial PCIe ECRC and iSCSI use) for per-transfer and
 * per-frame checks, and CRC16 with the T10-DIF polynomial for the
 * per-sector guard tags the block path carries. Both are plain
 * bit-serial implementations — integrity checks in the simulator
 * are about catching injected corruption deterministically, not
 * about throughput, so table-free keeps the header dependency-free.
 */

#ifndef BMHIVE_BASE_CHECKSUM_HH
#define BMHIVE_BASE_CHECKSUM_HH

#include <cstddef>
#include <cstdint>

namespace bmhive {

/** CRC32C (Castagnoli, reflected 0x82F63B78), seedable so checks
 *  over split buffers can chain: crc32c(b, n, crc32c(a, m)). */
inline std::uint32_t
crc32c(const std::uint8_t *data, std::size_t len,
       std::uint32_t seed = 0)
{
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < len; ++i) {
        crc ^= data[i];
        for (int b = 0; b < 8; ++b)
            crc = (crc >> 1) ^ (0x82F63B78u & (0u - (crc & 1u)));
    }
    return ~crc;
}

/** Fold one 64-bit word into a running CRC32C (for checksumming
 *  structured records field by field without staging a buffer). */
inline std::uint32_t
crc32cWord(std::uint64_t word, std::uint32_t seed = 0)
{
    std::uint8_t bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = std::uint8_t(word >> (8 * i));
    return crc32c(bytes, sizeof(bytes), seed);
}

/** CRC16 with the T10-DIF polynomial 0x8BB7 (non-reflected, zero
 *  seed): the guard tag of one 512-byte protection-interval. */
inline std::uint16_t
crc16T10dif(const std::uint8_t *data, std::size_t len)
{
    std::uint16_t crc = 0;
    for (std::size_t i = 0; i < len; ++i) {
        crc ^= std::uint16_t(data[i]) << 8;
        for (int b = 0; b < 8; ++b) {
            crc = std::uint16_t(
                (crc << 1) ^ ((crc & 0x8000u) ? 0x8BB7u : 0u));
        }
    }
    return crc;
}

} // namespace bmhive

#endif // BMHIVE_BASE_CHECKSUM_HH

#include "base/stats.hh"

#include <cmath>

#include "base/logging.hh"

namespace bmhive {

void
SummaryStats::record(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / double(n_);
    m2_ += delta * (x - mean_);
}

void
SummaryStats::reset()
{
    n_ = 0;
    mean_ = m2_ = min_ = max_ = sum_ = 0.0;
}

double
SummaryStats::variance() const
{
    return n_ > 1 ? m2_ / double(n_ - 1) : 0.0;
}

double
SummaryStats::stddev() const
{
    return std::sqrt(variance());
}

void
SampleSet::record(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

void
SampleSet::reset()
{
    samples_.clear();
    sorted_ = false;
}

double
SampleSet::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double s : samples_)
        sum += s;
    return sum / double(samples_.size());
}

void
SampleSet::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
SampleSet::percentile(double q) const
{
    panic_if(q < 0.0 || q > 1.0, "quantile out of range: ", q);
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    // Nearest-rank: the smallest sample such that at least q of the
    // distribution is at or below it.
    std::size_t n = samples_.size();
    std::size_t rank = std::size_t(std::ceil(q * double(n)));
    if (rank == 0)
        rank = 1;
    if (rank > n)
        rank = n;
    return samples_[rank - 1];
}

double
SampleSet::min() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return samples_.front();
}

double
SampleSet::max() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return samples_.back();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi),
      width_((hi - lo) / double(buckets ? buckets : 1)),
      counts_(buckets, 0)
{
    panic_if(hi <= lo, "histogram range is empty: [", lo, ", ", hi, ")");
    panic_if(buckets == 0, "histogram needs at least one bucket");
}

void
Histogram::record(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    auto idx = std::size_t((x - lo_) / width_);
    if (idx >= counts_.size())
        idx = counts_.size() - 1;
    ++counts_[idx];
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = overflow_ = total_ = 0;
}

double
Histogram::bucketLow(std::size_t i) const
{
    return lo_ + width_ * double(i);
}

double
Histogram::bucketHigh(std::size_t i) const
{
    return lo_ + width_ * double(i + 1);
}

double
Histogram::percentile(double q) const
{
    panic_if(q < 0.0 || q > 1.0, "quantile out of range: ", q);
    if (total_ == 0)
        return 0.0;
    auto rank = std::uint64_t(std::ceil(q * double(total_)));
    if (rank == 0)
        rank = 1;
    if (rank > total_)
        rank = total_;
    std::uint64_t cum = underflow_;
    if (cum >= rank)
        return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        cum += counts_[i];
        if (cum >= rank)
            return bucketHigh(i);
    }
    return hi_;
}

void
Gauge::set(double v)
{
    value_ = v;
    if (!seen_) {
        min_ = max_ = v;
        seen_ = true;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++updates_;
}

void
Gauge::reset()
{
    min_ = max_ = value_;
    seen_ = true;
    updates_ = 0;
}

void
TimeWeightedAverage::record(double v, Tick now)
{
    panic_if(started_ && now < last_,
             "time-weighted average fed non-monotonic time");
    if (!started_) {
        started_ = true;
        start_ = last_ = now;
    }
    weighted_ += value_ * double(now - last_);
    value_ = v;
    last_ = now;
}

double
TimeWeightedAverage::average(Tick now) const
{
    if (!started_ || now <= start_)
        return value_;
    double integral = weighted_;
    if (now > last_)
        integral += value_ * double(now - last_);
    return integral / double(now - start_);
}

void
TimeWeightedAverage::reset()
{
    value_ = weighted_ = 0.0;
    start_ = last_ = 0;
    started_ = false;
}

} // namespace bmhive

/**
 * @file
 * Simulation units: time (Tick, picosecond resolution), data sizes,
 * and bandwidth. All arithmetic is integer where possible to keep
 * the simulation deterministic across platforms.
 */

#ifndef BMHIVE_BASE_UNITS_HH
#define BMHIVE_BASE_UNITS_HH

#include <cstdint>

namespace bmhive {

/**
 * Simulated time. One Tick is one picosecond, following gem5. At
 * picosecond resolution a 64-bit Tick covers ~107 days of simulated
 * time, comfortably beyond the paper's longest window (24 h, Fig 1).
 */
using Tick = std::uint64_t;

/** The maximum representable tick; used as "never". */
constexpr Tick maxTick = ~Tick(0);

constexpr Tick tickPs = 1;
constexpr Tick tickNs = 1000 * tickPs;
constexpr Tick tickUs = 1000 * tickNs;
constexpr Tick tickMs = 1000 * tickUs;
constexpr Tick tickSec = 1000 * tickMs;

/** Convenience constructors, e.g. usToTicks(0.8) for an IO-Bond hop. */
constexpr Tick nsToTicks(double ns) { return Tick(ns * tickNs); }
constexpr Tick usToTicks(double us) { return Tick(us * tickUs); }
constexpr Tick msToTicks(double ms) { return Tick(ms * tickMs); }
constexpr Tick secToTicks(double s) { return Tick(s * tickSec); }

constexpr double ticksToNs(Tick t) { return double(t) / tickNs; }
constexpr double ticksToUs(Tick t) { return double(t) / tickUs; }
constexpr double ticksToMs(Tick t) { return double(t) / tickMs; }
constexpr double ticksToSec(Tick t) { return double(t) / tickSec; }

/** Data sizes in bytes. */
using Bytes = std::uint64_t;

/** Guest-physical (or bus) address. */
using Addr = std::uint64_t;

constexpr Bytes KiB = 1024;
constexpr Bytes MiB = 1024 * KiB;
constexpr Bytes GiB = 1024 * MiB;

/**
 * Bandwidth expressed in bits per second of simulated time.
 * Stored as a double because cloud link rates (e.g. 9.6 Gbit/s
 * after rate limiting) are not integral in bits per picosecond.
 */
class Bandwidth
{
  public:
    constexpr Bandwidth() : bitsPerSec_(0) {}
    explicit constexpr Bandwidth(double bits_per_sec)
        : bitsPerSec_(bits_per_sec) {}

    static constexpr Bandwidth
    gbps(double v)
    {
        return Bandwidth(v * 1e9);
    }

    static constexpr Bandwidth
    mbps(double v)
    {
        return Bandwidth(v * 1e6);
    }

    static constexpr Bandwidth
    bytesPerSec(double v)
    {
        return Bandwidth(v * 8.0);
    }

    constexpr double bitsPerSec() const { return bitsPerSec_; }
    constexpr double bytesPerSec() const { return bitsPerSec_ / 8.0; }
    constexpr double gbitsPerSec() const { return bitsPerSec_ / 1e9; }

    /** Time to move @p bytes at this rate. */
    constexpr Tick
    transferTime(Bytes bytes) const
    {
        if (bitsPerSec_ <= 0.0)
            return maxTick;
        double secs = double(bytes) * 8.0 / bitsPerSec_;
        return Tick(secs * double(tickSec));
    }

    constexpr bool valid() const { return bitsPerSec_ > 0.0; }

    constexpr bool
    operator<(const Bandwidth &o) const
    {
        return bitsPerSec_ < o.bitsPerSec_;
    }

  private:
    double bitsPerSec_;
};

/** Smaller of two bandwidths (bottleneck of a path). */
constexpr Bandwidth
minBandwidth(Bandwidth a, Bandwidth b)
{
    return a < b ? a : b;
}

} // namespace bmhive

#endif // BMHIVE_BASE_UNITS_HH

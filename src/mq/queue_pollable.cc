#include "mq/queue_pollable.hh"

#include <algorithm>

namespace bmhive {
namespace mq {

PassthroughPoller::PassthroughPoller(Simulation &sim,
                                     std::string name,
                                     hw::CpuExecutor &core,
                                     PassthroughPollerParams params)
    : SimObject(sim, std::move(name)), core_(core), params_(params),
      period_(params.pollPeriod),
      rounds_(metrics().counter(this->name() + ".rounds")),
      busy_(metrics().counter(this->name() + ".busy_rounds")),
      items_(metrics().counter(this->name() + ".items")),
      wakes_(metrics().counter(this->name() + ".wakes"))
{
    pollEvent_ = std::make_unique<EventFunctionWrapper>(
        [this] { runRound(); }, this->name() + ".round",
        Event::pollPri);
}

PassthroughPoller::~PassthroughPoller()
{
    if (pollEvent_->scheduled())
        eventq().deschedule(pollEvent_.get());
}

void
PassthroughPoller::bind(QueuePollable::PollFn poll)
{
    poll_ = std::move(poll);
    period_ = params_.pollPeriod;
    Tick at = curTick() + params_.wakeLatency;
    if (pollEvent_->scheduled())
        eventq().reschedule(pollEvent_.get(), at);
    else
        eventq().schedule(pollEvent_.get(), at);
}

void
PassthroughPoller::unbind()
{
    poll_ = nullptr;
    if (pollEvent_->scheduled())
        eventq().deschedule(pollEvent_.get());
}

void
PassthroughPoller::wake()
{
    if (!poll_)
        return;
    wakes_.inc();
    period_ = params_.pollPeriod;
    Tick at = curTick() + params_.wakeLatency;
    if (pollEvent_->scheduled()) {
        if (pollEvent_->when() > at)
            eventq().reschedule(pollEvent_.get(), at);
    } else {
        eventq().schedule(pollEvent_.get(), at);
    }
}

void
PassthroughPoller::runRound()
{
    if (!poll_)
        return;
    rounds_.inc();
    unsigned served = poll_(params_.budget);
    if (served > 0) {
        busy_.inc();
        items_.inc(served);
        period_ = params_.pollPeriod;
    } else {
        // Idle: double toward the ceiling but keep visiting — a
        // dedicated poller backs off, it never sleeps.
        period_ = std::min(period_ * 2, params_.maxBackoff);
    }
    Tick at = curTick() + period_;
    if (core_.busyUntil() > at)
        at = core_.busyUntil();
    eventq().schedule(pollEvent_.get(), at);
}

} // namespace mq
} // namespace bmhive

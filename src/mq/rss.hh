/**
 * @file
 * Receive-side scaling for multi-queue virtio-net.
 *
 * A Toeplitz-style hash over the flow tuple (src MAC, dst MAC,
 * flow id — our stand-in for the 5-tuple of the modelled UDP
 * frame) indexes a per-port indirection table that maps hash
 * buckets to rx queues. The hash is keyed and deterministic: the
 * same tuple always lands on the same queue (in-order delivery per
 * flow is preserved across a multi-queue NIC), and the same seed
 * always produces the same steering (the repo-wide byte-identical
 * metrics gate).
 *
 * Kept free of cloud:: types on purpose — the vSwitch depends on
 * mq, not the other way around.
 */

#ifndef BMHIVE_MQ_RSS_HH
#define BMHIVE_MQ_RSS_HH

#include <array>
#include <cstdint>

namespace bmhive {
namespace mq {

/** Default RSS hash key (plays the role of the 40-byte Toeplitz
 *  secret real NICs are programmed with). */
constexpr std::uint64_t defaultRssKey = 0x6d5a56da255b0ec2ull;

/**
 * Toeplitz-style hash: the key is rotated one bit per input bit
 * and XORed in for every set bit, exactly the structure of the
 * Microsoft RSS hash collapsed onto a 64-bit key.
 */
std::uint32_t toeplitzHash(std::uint64_t src, std::uint64_t dst,
                           std::uint32_t flow,
                           std::uint64_t key = defaultRssKey);

/**
 * Per-port indirection table: hash % tableSize -> rx queue. The
 * default table spreads buckets round-robin over the active queue
 * count; entries can be repointed individually (the ethtool -X
 * analog) without re-hashing flows.
 */
class RssTable
{
  public:
    /** 128 buckets, the common small-NIC indirection size. */
    static constexpr unsigned tableSize = 128;

    explicit RssTable(unsigned queues = 1,
                      std::uint64_t key = defaultRssKey);

    /** Rebuild the table round-robin over @p queues. */
    void resize(unsigned queues);

    unsigned queues() const { return queues_; }

    /** Repoint one bucket (clamped to the active queue count). */
    void setEntry(unsigned bucket, unsigned queue);

    /** Rx queue for the flow tuple. */
    unsigned queueFor(std::uint64_t src, std::uint64_t dst,
                      std::uint32_t flow) const;

  private:
    std::uint64_t key_;
    unsigned queues_;
    std::array<std::uint16_t, tableSize> table_{};
};

} // namespace mq
} // namespace bmhive

#endif // BMHIVE_MQ_RSS_HH

#include "mq/rss.hh"

namespace bmhive {
namespace mq {

namespace {

/** Fold one input word into the running Toeplitz state. */
std::uint32_t
toeplitzWord(std::uint64_t word, std::uint64_t &key,
             std::uint32_t acc)
{
    for (int bit = 63; bit >= 0; --bit) {
        if (word & (1ull << bit))
            acc ^= std::uint32_t(key >> 32);
        key = (key << 1) | (key >> 63);
    }
    return acc;
}

} // namespace

std::uint32_t
toeplitzHash(std::uint64_t src, std::uint64_t dst,
             std::uint32_t flow, std::uint64_t key)
{
    std::uint32_t acc = 0;
    acc = toeplitzWord(src, key, acc);
    acc = toeplitzWord(dst, key, acc);
    acc = toeplitzWord(flow, key, acc);
    return acc;
}

RssTable::RssTable(unsigned queues, std::uint64_t key)
    : key_(key), queues_(queues ? queues : 1)
{
    resize(queues_);
}

void
RssTable::resize(unsigned queues)
{
    queues_ = queues ? queues : 1;
    for (unsigned i = 0; i < tableSize; ++i)
        table_[i] = std::uint16_t(i % queues_);
}

void
RssTable::setEntry(unsigned bucket, unsigned queue)
{
    if (bucket >= tableSize)
        return;
    table_[bucket] = std::uint16_t(queue % queues_);
}

unsigned
RssTable::queueFor(std::uint64_t src, std::uint64_t dst,
                   std::uint32_t flow) const
{
    std::uint32_t h = toeplitzHash(src, dst, flow, key_);
    return table_[h % tableSize];
}

} // namespace mq
} // namespace bmhive

/**
 * @file
 * Per-queue scheduling units for multi-queue virtio backends.
 *
 * QueuePollable adapts one virtqueue's poll entry point to
 * sched::Pollable so the DWRR scheduler schedules queues, not
 * guests: a 4-queue NIC registers four pollables spread across
 * poll cores, each with its own weight (containment) and its own
 * served counter / flight-recorder attribution.
 *
 * PassthroughPoller is the negotiated fast path beyond shared
 * dispatch (the software analog of NVMe I/O-queue passthrough): a
 * dedicated queue pair binds 1:1 to a backend poller that
 * self-schedules on its core with no DWRR stage in between.
 * IO-Bond shadow-sync and copyv batching still apply — only the
 * shared scheduling stage is bypassed. Quarantine demotes a
 * passthrough queue back to shared mode by unbinding it.
 */

#ifndef BMHIVE_MQ_QUEUE_POLLABLE_HH
#define BMHIVE_MQ_QUEUE_POLLABLE_HH

#include <functional>
#include <memory>
#include <string>

#include "base/paper_constants.hh"
#include "base/stats.hh"
#include "hw/cpu_executor.hh"
#include "sched/pollable.hh"
#include "sim/sim_object.hh"

namespace bmhive {
namespace mq {

/**
 * One virtqueue (or queue pair) as a schedulable unit. The owner
 * provides the poll thunk — typically a bound call into its
 * VirtioIoService that services exactly this queue and charges the
 * visiting scheduler core — plus optional liveness and stall
 * delegates mirroring the owning backend's state.
 */
class QueuePollable : public sched::Pollable
{
  public:
    using PollFn = std::function<unsigned(unsigned budget)>;

    QueuePollable(std::string name, PollFn poll)
        : name_(std::move(name)), poll_(std::move(poll))
    {}

    void setAlive(std::function<bool()> f) { alive_ = std::move(f); }
    void
    setBlockedUntil(std::function<Tick()> f)
    {
        blocked_ = std::move(f);
    }
    /** Swap the poll thunk (service respawn / live upgrade). */
    void setPoll(PollFn poll) { poll_ = std::move(poll); }

    unsigned
    servicePoll(unsigned budget) override
    {
        return poll_ ? poll_(budget) : 0;
    }

    bool
    pollAlive() const override
    {
        return alive_ ? alive_() : bool(poll_);
    }

    Tick
    pollBlockedUntil() const override
    {
        return blocked_ ? blocked_() : 0;
    }

    const std::string &pollableName() const override { return name_; }

  private:
    std::string name_;
    PollFn poll_;
    std::function<bool()> alive_;
    std::function<Tick()> blocked_;
};

struct PassthroughPollerParams
{
    /** Busy-poll period of the dedicated poller. */
    Tick pollPeriod = paper::bmPollPeriod;
    /** Idle-backoff ceiling (same governor shape as the shared
     *  scheduler, minus the sleep state: a dedicated poller never
     *  fully parks while bound — that is the passthrough deal). */
    Tick maxBackoff = paper::schedMaxBackoff;
    /** Doorbell-to-poll latency when backed off. */
    Tick wakeLatency = paper::schedWakeLatency;
    /** Items serviced per visit. */
    unsigned budget = 64;
};

/**
 * Dedicated 1:1 poller for a passthrough queue. bind() starts a
 * self-rescheduling poll loop on the poller's core; unbind()
 * (quarantine demotion, teardown) stops it. wake() is the
 * doorbell hook — it snaps a backed-off poller back to the busy
 * period.
 */
class PassthroughPoller : public SimObject
{
  public:
    PassthroughPoller(Simulation &sim, std::string name,
                      hw::CpuExecutor &core,
                      PassthroughPollerParams params = {});
    ~PassthroughPoller() override;

    /** Bind @p poll 1:1 to this poller and start polling. */
    void bind(QueuePollable::PollFn poll);
    /** Drop the binding and stop polling. */
    void unbind();
    bool bound() const { return bool(poll_); }

    /** Doorbell: expedite the next visit. */
    void wake();

    hw::CpuExecutor &core() { return core_; }
    std::uint64_t rounds() const { return rounds_.value(); }
    std::uint64_t items() const { return items_.value(); }

  private:
    void runRound();

    hw::CpuExecutor &core_;
    PassthroughPollerParams params_;
    QueuePollable::PollFn poll_;
    Tick period_;
    Counter &rounds_;
    Counter &busy_;
    Counter &items_;
    Counter &wakes_;
    std::unique_ptr<EventFunctionWrapper> pollEvent_;
};

} // namespace mq
} // namespace bmhive

#endif // BMHIVE_MQ_QUEUE_POLLABLE_HH

#include "obs/metric_registry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "base/logging.hh"

namespace bmhive {
namespace obs {

namespace {

const char *
kindName(MetricRegistry::Kind k)
{
    switch (k) {
      case MetricRegistry::Kind::Counter:
        return "counter";
      case MetricRegistry::Kind::Gauge:
        return "gauge";
      case MetricRegistry::Kind::Histogram:
        return "histogram";
      case MetricRegistry::Kind::Latency:
        return "latency";
    }
    return "?";
}

/** Metric names are ASCII identifiers; escape defensively anyway. */
void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (std::uint8_t(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    out += '"';
}

void
appendJsonNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    char buf[32];
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    else
        std::snprintf(buf, sizeof(buf), "%.6g", v);
    out += buf;
}

} // namespace

MetricRegistry &
MetricRegistry::global()
{
    static MetricRegistry registry;
    return registry;
}

void
MetricRegistry::shard(unsigned lanes,
                      std::function<unsigned()> resolver)
{
    std::lock_guard<std::mutex> lk(mu_);
    panic_if(lanes == 0, "metric registry needs at least one lane");
    if (lanes > lanes_.size())
        lanes_.resize(lanes);
    resolver_ = std::move(resolver);
}

MetricRegistry::Entry &
MetricRegistry::fetch(const std::string &name, Kind kind)
{
    // Caller holds mu_. Names are unique across lanes: the lane
    // only decides which map a new metric lands in (so worker
    // threads registering mid-run don't contend on one node pool's
    // structure); lookups always scan all lanes.
    for (auto &lane : lanes_) {
        auto it = lane.find(name);
        if (it != lane.end()) {
            panic_if(it->second.kind != kind, "metric '", name,
                     "' registered as ", kindName(it->second.kind),
                     ", requested as ", kindName(kind));
            return it->second;
        }
    }
    std::size_t lane = 0;
    if (resolver_)
        lane = std::min<std::size_t>(resolver_(), lanes_.size() - 1);
    Entry e;
    e.kind = kind;
    return lanes_[lane].emplace(name, std::move(e)).first->second;
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    Entry &e = fetch(name, Kind::Counter);
    if (!e.counter)
        e.counter = std::make_unique<Counter>();
    return *e.counter;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    Entry &e = fetch(name, Kind::Gauge);
    if (!e.gauge)
        e.gauge = std::make_unique<Gauge>();
    return *e.gauge;
}

Histogram &
MetricRegistry::histogram(const std::string &name, double lo,
                          double hi, std::size_t buckets)
{
    std::lock_guard<std::mutex> lk(mu_);
    Entry &e = fetch(name, Kind::Histogram);
    if (!e.histogram)
        e.histogram = std::make_unique<Histogram>(lo, hi, buckets);
    return *e.histogram;
}

LatencyRecorder &
MetricRegistry::latency(const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    Entry &e = fetch(name, Kind::Latency);
    if (!e.latency)
        e.latency = std::make_unique<LatencyRecorder>();
    return *e.latency;
}

bool
MetricRegistry::has(const std::string &name) const
{
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto &lane : lanes_)
        if (lane.count(name))
            return true;
    return false;
}

std::size_t
MetricRegistry::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t n = 0;
    for (const auto &lane : lanes_)
        n += lane.size();
    return n;
}

std::vector<std::pair<const std::string *,
                      const MetricRegistry::Entry *>>
MetricRegistry::merged() const
{
    // Caller holds mu_. Lanes hold disjoint name sets; sorting the
    // union restores the exact iteration order a single map would
    // have, keeping exports byte-identical to an unsharded (and to
    // a single-threaded) registry.
    std::vector<std::pair<const std::string *, const Entry *>> out;
    for (const auto &lane : lanes_)
        for (const auto &[name, entry] : lane)
            out.emplace_back(&name, &entry);
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return *a.first < *b.first;
              });
    return out;
}

void
MetricRegistry::forEach(
    const std::function<void(const std::string &, Kind)> &fn) const
{
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto &[name, entry] : merged())
        fn(*name, entry->kind);
}

void
MetricRegistry::appendJsonValue(std::string &out, const Entry &e)
{
    switch (e.kind) {
      case Kind::Counter:
        appendJsonNumber(out, double(e.counter->value()));
        break;
      case Kind::Gauge:
        out += "{\"value\":";
        appendJsonNumber(out, e.gauge->value());
        out += ",\"min\":";
        appendJsonNumber(out, e.gauge->minWatermark());
        out += ",\"max\":";
        appendJsonNumber(out, e.gauge->maxWatermark());
        out += ",\"updates\":";
        appendJsonNumber(out, double(e.gauge->updates()));
        out += '}';
        break;
      case Kind::Histogram: {
        const Histogram &h = *e.histogram;
        out += "{\"total\":";
        appendJsonNumber(out, double(h.total()));
        out += ",\"underflow\":";
        appendJsonNumber(out, double(h.underflow()));
        out += ",\"overflow\":";
        appendJsonNumber(out, double(h.overflow()));
        out += ",\"p50\":";
        appendJsonNumber(out, h.percentile(0.50));
        out += ",\"p90\":";
        appendJsonNumber(out, h.percentile(0.90));
        out += ",\"p99\":";
        appendJsonNumber(out, h.percentile(0.99));
        out += ",\"p999\":";
        appendJsonNumber(out, h.percentile(0.999));
        out += ",\"buckets\":[";
        bool first = true;
        for (std::size_t i = 0; i < h.buckets(); ++i) {
            if (h.bucketCount(i) == 0)
                continue;
            if (!first)
                out += ',';
            first = false;
            out += '[';
            appendJsonNumber(out, h.bucketLow(i));
            out += ',';
            appendJsonNumber(out, h.bucketHigh(i));
            out += ',';
            appendJsonNumber(out, double(h.bucketCount(i)));
            out += ']';
        }
        out += "]}";
        break;
      }
      case Kind::Latency: {
        const LatencyRecorder &l = *e.latency;
        out += "{\"count\":";
        appendJsonNumber(out, double(l.count()));
        out += ",\"mean_us\":";
        appendJsonNumber(out, l.meanUs());
        out += ",\"p50_us\":";
        appendJsonNumber(out, l.p50Us());
        out += ",\"p90_us\":";
        appendJsonNumber(out, l.p90Us());
        out += ",\"p99_us\":";
        appendJsonNumber(out, l.p99Us());
        out += ",\"p999_us\":";
        appendJsonNumber(out, l.p999Us());
        out += ",\"max_us\":";
        appendJsonNumber(out, l.maxUs());
        out += '}';
        break;
      }
    }
}

std::string
MetricRegistry::toJson() const
{
    // "schema_version" leads every registry object; metric names
    // are dotted, so the bare key can never collide. merged() is
    // name-ordered, so the emitted key order is stable for
    // byte-diffable same-seed snapshots regardless of lane count.
    std::lock_guard<std::mutex> lk(mu_);
    std::string out = "{\n  \"schema_version\": ";
    appendJsonNumber(out, double(jsonSchemaVersion));
    for (const auto &[name, entry] : merged()) {
        out += ",\n  ";
        appendJsonString(out, *name);
        out += ": ";
        appendJsonValue(out, *entry);
    }
    out += "\n}";
    return out;
}

std::string
MetricRegistry::toText() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::string out;
    char buf[160];
    for (const auto &[namep, entryp] : merged()) {
        const std::string &name = *namep;
        const Entry &entry = *entryp;
        switch (entry.kind) {
          case Kind::Counter:
            std::snprintf(buf, sizeof(buf), "%s %llu\n", name.c_str(),
                          (unsigned long long)entry.counter->value());
            break;
          case Kind::Gauge:
            std::snprintf(buf, sizeof(buf),
                          "%s %g min=%g max=%g\n", name.c_str(),
                          entry.gauge->value(),
                          entry.gauge->minWatermark(),
                          entry.gauge->maxWatermark());
            break;
          case Kind::Histogram:
            std::snprintf(buf, sizeof(buf),
                          "%s total=%llu under=%llu over=%llu\n",
                          name.c_str(),
                          (unsigned long long)entry.histogram->total(),
                          (unsigned long long)
                              entry.histogram->underflow(),
                          (unsigned long long)
                              entry.histogram->overflow());
            break;
          case Kind::Latency:
            std::snprintf(
                buf, sizeof(buf),
                "%s count=%llu mean=%.3fus p99=%.3fus\n",
                name.c_str(),
                (unsigned long long)entry.latency->count(),
                entry.latency->meanUs(), entry.latency->p99Us());
            break;
        }
        out += buf;
    }
    return out;
}

void
MetricRegistry::resetAll()
{
    std::lock_guard<std::mutex> lk(mu_);
    for (auto &lane : lanes_)
    for (auto &[name, entry] : lane) {
        (void)name;
        switch (entry.kind) {
          case Kind::Counter:
            entry.counter->reset();
            break;
          case Kind::Gauge:
            entry.gauge->reset();
            break;
          case Kind::Histogram:
            entry.histogram->reset();
            break;
          case Kind::Latency:
            entry.latency->reset();
            break;
        }
    }
}

} // namespace obs
} // namespace bmhive

/**
 * @file
 * TraceSink: ring-buffered collector of Chrome trace_event records
 * (the JSON format chrome://tracing and Perfetto open). Components
 * record "complete" spans (name, lane, start, duration) and
 * instants; writeJson() emits the standard
 * {"traceEvents":[...]} object.
 *
 * Cost model: disabled sinks cost one predictable branch per
 * record call; with -DBMHIVE_TRACING=OFF the recording bodies and
 * the enabled() check compile away entirely (enabled() becomes a
 * constant false), so instrumented hot paths carry zero overhead.
 *
 * The buffer is a fixed-capacity ring: when full, the oldest
 * events are overwritten and counted as dropped, bounding memory
 * for arbitrarily long runs.
 */

#ifndef BMHIVE_OBS_TRACE_HH
#define BMHIVE_OBS_TRACE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "base/units.hh"

/** Compile-time master switch (CMake option BMHIVE_TRACING). */
#ifndef BMHIVE_TRACING
#define BMHIVE_TRACING 1
#endif

namespace bmhive {
namespace obs {

class TraceSink
{
  public:
    struct Event
    {
        std::string name;
        std::string cat;
        char ph;           ///< 'X' complete, 'i' instant
        Tick ts;           ///< start tick
        Tick dur;          ///< duration (complete events)
        std::uint32_t tid; ///< lane (see lane())
        std::uint64_t id;  ///< flow correlation id
    };

    TraceSink() = default;

    /** Start recording into a ring of @p capacity events. */
    void enable(std::size_t capacity = 1 << 16);
    void disable() { enabled_ = false; }

#if BMHIVE_TRACING
    bool enabled() const { return enabled_; }
#else
    constexpr bool enabled() const { return false; }
#endif

    /**
     * Stable small integer for a named lane (rendered as a thread
     * in the trace viewer). Get-or-create; writeJson() emits the
     * matching thread_name metadata.
     */
    std::uint32_t lane(const std::string &name);

    /** Span covering [start, start+dur]. */
    void recordComplete(const std::string &name,
                        const std::string &cat, Tick start, Tick dur,
                        std::uint32_t tid, std::uint64_t id = 0);

    /** Point event. */
    void recordInstant(const std::string &name,
                       const std::string &cat, Tick at,
                       std::uint32_t tid, std::uint64_t id = 0);

    std::size_t size() const;
    std::uint64_t dropped() const { return dropped_; }

    /** Events oldest-first (unwraps the ring). */
    std::vector<Event> events() const;

    /** Chrome trace_event JSON ({"traceEvents": [...]}). */
    std::string toJson() const;

    /** Write toJson() to @p path; false on I/O error. */
    bool writeJson(const std::string &path) const;

    void clear();

  private:
    void push(Event e);

    /** Serializes ring/lane mutation: partitioned simulations may
     *  record from several worker threads at once. The enabled()
     *  fast path stays lock-free (a sink is enabled before any
     *  events run and trace ordering is not a determinism
     *  surface — exported spans are sorted by viewers anyway). */
    mutable std::mutex mu_;
    bool enabled_ = false;
    std::vector<Event> ring_;
    std::size_t capacity_ = 0;
    std::size_t head_ = 0; ///< next write position
    bool wrapped_ = false;
    std::uint64_t dropped_ = 0;
    std::vector<std::string> lanes_;
};

} // namespace obs
} // namespace bmhive

#endif // BMHIVE_OBS_TRACE_HH

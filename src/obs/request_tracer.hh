/**
 * @file
 * RequestTracer: per-stage latency attribution for one guest's I/O
 * path. Each request is a *flow*, keyed by (function, queue,
 * descriptor head), stamped as it crosses the layer boundaries of
 * the BM-Hive datapath (paper Fig. 6):
 *
 *   GuestPost   guest rang the IO-Bond doorbell (flow start)
 *   ShadowSync  chain published on the shadow vring (DMA landed)
 *   SchedDelay  shared poll-core scheduler reached the backend
 *               (zero-width under dedicated polling)
 *   PollPickup  bm-hypervisor PMD popped the shadow chain
 *   Service     vSwitch handoff / block-service completion
 *   CompleteDma used element + data DMA'd back to guest memory
 *   GuestIrq    MSI raised toward the guest (flow end)
 *
 * Every transition feeds a LatencyRecorder registered under
 * "<path>.stage.<name>" in the owning simulation's MetricRegistry,
 * so stage sums reconstruct the end-to-end latency exactly. When a
 * TraceSink is attached (and BMHIVE_TRACING is on), each
 * transition additionally emits a Chrome trace_event span.
 *
 * Stamping with no tracer attached costs one null check at the
 * instrumentation site; the tracer itself is allocated only when
 * tracing is requested.
 */

#ifndef BMHIVE_OBS_REQUEST_TRACER_HH
#define BMHIVE_OBS_REQUEST_TRACER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "base/stats.hh"
#include "base/units.hh"
#include "obs/metric_registry.hh"
#include "obs/trace.hh"

namespace bmhive {
namespace obs {

enum class Stage : unsigned {
    GuestPost = 0,
    ShadowSync,
    SchedDelay,
    PollPickup,
    Service,
    CompleteDma,
    GuestIrq,
};

constexpr unsigned numStages = 7;

const char *stageName(Stage s);

class RequestTracer
{
  public:
    /** A finished flow: when each stage was stamped. */
    struct FlowRecord
    {
        std::uint64_t key = 0;
        /** Tick of each stage; stageSeen masks validity. */
        std::array<Tick, numStages> at{};
        unsigned stageSeen = 0; ///< bit i = stage i stamped
    };

    /**
     * @param path hierarchical name, e.g. "server.guest0.hv.net";
     *        stage recorders register under "<path>.stage.*"
     * @param sink optional Chrome trace sink (one lane per tracer)
     */
    RequestTracer(std::string path, MetricRegistry &registry,
                  TraceSink *sink = nullptr);

    /** Flow key: one in-flight request is unique per (fn, q, head). */
    static std::uint64_t
    flowKey(unsigned fn, unsigned q, std::uint16_t head)
    {
        return (std::uint64_t(fn) << 32) | (std::uint64_t(q) << 16) |
               head;
    }

    /**
     * Stamp stage @p s of flow @p key at time @p now. GuestPost
     * opens the flow; the final stage (GuestIrq by default) closes
     * it. Stamps for unknown flows (e.g. backend-initiated rx
     * completions) count as unmatched and are otherwise ignored.
     */
    void stamp(std::uint64_t key, Stage s, Tick now);

    /**
     * Which stage completes a flow. Defaults to GuestIrq; paths
     * whose driver suppresses completion interrupts (virtio-net tx
     * reclaims used buffers opportunistically, without an MSI) end
     * at CompleteDma instead.
     */
    void setFinalStage(Stage s) { finalStage_ = s; }
    Stage finalStage() const { return finalStage_; }

    /**
     * Invoked once per closed flow with the end-to-end
     * GuestPost -> final-stage latency. This is SloMonitor's feed;
     * it fires after the stage recorders update, at most once per
     * flow (evicted/aborted flows never close).
     */
    using CloseHook = std::function<void(Tick e2eLatency, Tick now)>;
    void setCloseHook(CloseHook cb) { closeHook_ = std::move(cb); }

    /**
     * Drop every open flow on (fn, q) without closing it — a queue
     * reset means those requests will never see their MSI, so the
     * entries would otherwise pin the open table forever. Counted
     * under "<path>.flows.aborted".
     */
    void dropOpen(unsigned fn, unsigned q);

    /** Cap on concurrently open flows; oldest-first eviction past
     *  it. Guards against a hostile guest posting heads it never
     *  lets complete. */
    void setMaxOpen(std::size_t n) { maxOpen_ = n ? n : 1; }
    std::size_t maxOpen() const { return maxOpen_; }

    /** Transition-latency recorder feeding stage @p s (not valid
     *  for GuestPost, which opens flows and has no predecessor). */
    const LatencyRecorder &stageLatency(Stage s) const;

    /** End-to-end GuestPost -> final-stage latency. */
    const LatencyRecorder &totalLatency() const { return *total_; }

    std::uint64_t started() const { return started_->value(); }
    std::uint64_t completed() const { return completed_->value(); }
    std::uint64_t unmatched() const { return unmatched_->value(); }
    std::uint64_t evicted() const { return evicted_->value(); }
    std::uint64_t aborted() const { return aborted_->value(); }
    std::size_t openFlows() const { return open_.size(); }

    /** Most recently completed flows, newest last (capped). */
    const std::deque<FlowRecord> &recent() const { return recent_; }

    const std::string &path() const { return path_; }

    /**
     * Human-readable per-stage breakdown: one line per stage with
     * count and mean, then the stage sum next to the end-to-end
     * mean (they match by construction; the printout shows it).
     */
    std::string breakdown() const;

  private:
    struct OpenFlow
    {
        std::array<Tick, numStages> at{};
        unsigned stageSeen = 0;
        Stage last = Stage::GuestPost;
        std::uint64_t seq = 0; ///< insertion order, for eviction
    };

    static constexpr std::size_t recentCap = 128;
    static constexpr std::size_t defaultMaxOpen = 4096;

    /** Evict oldest open flows until the table fits maxOpen_. */
    void enforceBound();

    std::string path_;
    Stage finalStage_ = Stage::GuestIrq;
    TraceSink *sink_;
    std::uint32_t lane_ = 0;
    std::array<LatencyRecorder *, numStages> stage_{};
    LatencyRecorder *total_;
    Counter *started_;
    Counter *completed_;
    Counter *unmatched_;
    Counter *evicted_;       ///< "<path>.flows.evicted"
    Counter *aborted_;       ///< "<path>.flows.aborted"
    Counter *evictedGlobal_; ///< registry-wide "obs.tracer.evicted_flows"
    std::map<std::uint64_t, OpenFlow> open_;
    std::size_t maxOpen_ = defaultMaxOpen;
    std::uint64_t seq_ = 0;
    /** Insertion order as (key, seq); entries whose seq no longer
     *  matches open_ are stale and popped lazily. */
    std::deque<std::pair<std::uint64_t, std::uint64_t>> order_;
    std::deque<FlowRecord> recent_;
    CloseHook closeHook_;
};

} // namespace obs
} // namespace bmhive

#endif // BMHIVE_OBS_REQUEST_TRACER_HH

#include "obs/trace.hh"

#include <cstdio>

namespace bmhive {
namespace obs {

void
TraceSink::enable(std::size_t capacity)
{
#if BMHIVE_TRACING
    capacity_ = capacity ? capacity : 1;
    ring_.clear();
    ring_.reserve(capacity_);
    head_ = 0;
    wrapped_ = false;
    dropped_ = 0;
    enabled_ = true;
#else
    (void)capacity; // compiled out: the sink stays disabled
#endif
}

std::uint32_t
TraceSink::lane(const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t i = 0; i < lanes_.size(); ++i)
        if (lanes_[i] == name)
            return std::uint32_t(i);
    lanes_.push_back(name);
    return std::uint32_t(lanes_.size() - 1);
}

void
TraceSink::push(Event e)
{
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(e));
        head_ = ring_.size() % capacity_;
        return;
    }
    ring_[head_] = std::move(e);
    head_ = (head_ + 1) % capacity_;
    wrapped_ = true;
    ++dropped_;
}

void
TraceSink::recordComplete(const std::string &name,
                          const std::string &cat, Tick start,
                          Tick dur, std::uint32_t tid,
                          std::uint64_t id)
{
#if BMHIVE_TRACING
    if (!enabled_)
        return;
    std::lock_guard<std::mutex> lk(mu_);
    push(Event{name, cat, 'X', start, dur, tid, id});
#else
    (void)name;
    (void)cat;
    (void)start;
    (void)dur;
    (void)tid;
    (void)id;
#endif
}

void
TraceSink::recordInstant(const std::string &name,
                         const std::string &cat, Tick at,
                         std::uint32_t tid, std::uint64_t id)
{
#if BMHIVE_TRACING
    if (!enabled_)
        return;
    std::lock_guard<std::mutex> lk(mu_);
    push(Event{name, cat, 'i', at, 0, tid, id});
#else
    (void)name;
    (void)cat;
    (void)at;
    (void)tid;
    (void)id;
#endif
}

std::size_t
TraceSink::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return ring_.size();
}

std::vector<TraceSink::Event>
TraceSink::events() const
{
    std::lock_guard<std::mutex> lk(mu_);
    if (!wrapped_)
        return ring_;
    std::vector<Event> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

std::string
TraceSink::toJson() const
{
    std::string out = "{\"displayTimeUnit\":\"ns\","
                      "\"traceEvents\":[";
    char buf[256];
    bool first = true;
    // Lane names as thread_name metadata so viewers label rows.
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
        std::snprintf(buf, sizeof(buf),
                      "%s\n{\"name\":\"thread_name\",\"ph\":\"M\","
                      "\"pid\":1,\"tid\":%u,"
                      "\"args\":{\"name\":\"%s\"}}",
                      first ? "" : ",", unsigned(i),
                      lanes_[i].c_str());
        out += buf;
        first = false;
    }
    for (const Event &e : events()) {
        // Ticks are picoseconds; trace_event "ts" is microseconds.
        std::snprintf(
            buf, sizeof(buf),
            "%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
            "\"ts\":%.6f,\"dur\":%.6f,\"pid\":1,\"tid\":%u,"
            "\"args\":{\"id\":%llu}}",
            first ? "" : ",", e.name.c_str(), e.cat.c_str(), e.ph,
            ticksToUs(e.ts), ticksToUs(e.dur), e.tid,
            (unsigned long long)e.id);
        out += buf;
        first = false;
    }
    out += "\n]}";
    return out;
}

bool
TraceSink::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::string json = toJson();
    bool ok = std::fwrite(json.data(), 1, json.size(), f) ==
              json.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

void
TraceSink::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    ring_.clear();
    head_ = 0;
    wrapped_ = false;
    dropped_ = 0;
}

} // namespace obs
} // namespace bmhive

#include "obs/slo_monitor.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "base/logging.hh"

namespace bmhive {
namespace obs {

const char *
sloRoleName(SloRole r)
{
    switch (r) {
      case SloRole::Net:
        return "net";
      case SloRole::Blk:
        return "blk";
    }
    return "?";
}

SloMonitor::SloMonitor(std::string path, MetricRegistry &registry,
                       SloParams params)
    : path_(std::move(path)), params_(params)
{
    fatal_if(params_.epochs == 0, path_,
             ": an SLO window needs at least one epoch");
    epochLen_ = std::max<Tick>(1, params_.window / params_.epochs);
    for (unsigned i = 0; i < numSloRoles; ++i) {
        Role &r = roles_[i];
        std::string base =
            path_ + "." + sloRoleName(SloRole(i));
        double target_us = SloRole(i) == SloRole::Net
                               ? params_.netTargetUs
                               : params_.blkTargetUs;
        r.targetTicks = usToTicks(target_us);
        r.epochs.resize(params_.epochs);
        r.samples = &registry.counter(base + ".samples");
        r.violationsTotal =
            &registry.counter(base + ".violations");
        r.breaches = &registry.counter(base + ".breaches");
        r.p50 = &registry.gauge(base + ".p50_us");
        r.p90 = &registry.gauge(base + ".p90_us");
        r.p99 = &registry.gauge(base + ".p99_us");
        r.p999 = &registry.gauge(base + ".p999_us");
        r.burn = &registry.gauge(base + ".burn_rate");
    }
    rotations_ = &registry.counter(path_ + ".rotations");
}

unsigned
SloMonitor::bucketOf(Tick latency)
{
    // Ticks are picoseconds; bucket on nanoseconds (sub-ns span
    // differences are below anything the timing model produces).
    std::uint64_t ns = latency / 1000;
    if (ns < (1ull << kSubBits))
        return unsigned(ns);
    unsigned exp = 63u - unsigned(std::countl_zero(ns));
    auto sub = unsigned((ns >> (exp - kSubBits)) &
                        ((1u << kSubBits) - 1));
    unsigned b = ((exp - kSubBits + 1) << kSubBits) + sub;
    return std::min(b, kBuckets - 1);
}

double
SloMonitor::bucketUpperUs(unsigned b)
{
    if (b < (1u << kSubBits))
        return double(b) / 1e3; // exact single-ns buckets
    unsigned exp = b / (1u << kSubBits) + kSubBits - 1;
    unsigned sub = b & ((1u << kSubBits) - 1);
    double lo = std::ldexp(1.0, int(exp));
    double step = std::ldexp(1.0, int(exp) - int(kSubBits));
    return (lo + double(sub + 1) * step) / 1e3;
}

void
SloMonitor::record(SloRole role, Tick latency, Tick now)
{
    Role &r = roles_[unsigned(role)];
    advance(r, now);
    Epoch &e = r.epochs[r.curEpoch % r.epochs.size()];
    ++e.counts[bucketOf(latency)];
    ++e.samples;
    r.samples->inc();
    if (latency > r.targetTicks) {
        ++e.violations;
        r.violationsTotal->inc();
    }
}

void
SloMonitor::advance(Role &r, Tick now)
{
    std::uint64_t cur = std::uint64_t(now / epochLen_);
    if (!r.started) {
        r.started = true;
        r.curEpoch = cur;
        Epoch &e = r.epochs[cur % r.epochs.size()];
        e = Epoch{};
        e.index = cur;
        return;
    }
    if (cur == r.curEpoch)
        return;
    // An epoch boundary passed: evaluate the window that just
    // completed before any of it rotates out. The breach latch is
    // the rotation itself — at most one signal per epoch.
    double burn = burnOf(r);
    std::uint64_t samples = 0;
    for (const Epoch &e : r.epochs)
        samples += e.samples;
    if (samples >= params_.minWindowSamples &&
        burn >= params_.breachBurn) {
        r.breaches->inc();
        if (breachCb_) {
            auto role = SloRole(unsigned(&r - roles_.data()));
            breachCb_(role, burn);
        }
    }
    updateGauges(r);
    rotations_->inc();
    // Clear every epoch slot the window slid past. A gap longer
    // than the whole window clears all of them.
    std::uint64_t n = r.epochs.size();
    std::uint64_t steps = std::min(cur - r.curEpoch, n);
    for (std::uint64_t i = cur - steps + 1; i <= cur; ++i) {
        Epoch &e = r.epochs[i % n];
        e = Epoch{};
        e.index = i;
    }
    r.curEpoch = cur;
}

void
SloMonitor::updateGauges(Role &r)
{
    r.p50->set(percentileOf(r, 0.50));
    r.p90->set(percentileOf(r, 0.90));
    r.p99->set(percentileOf(r, 0.99));
    r.p999->set(percentileOf(r, 0.999));
    r.burn->set(burnOf(r));
}

double
SloMonitor::percentileOf(const Role &r, double q) const
{
    std::uint64_t total = 0;
    for (const Epoch &e : r.epochs)
        total += e.samples;
    if (total == 0)
        return 0.0;
    auto rank = std::uint64_t(std::ceil(q * double(total)));
    rank = std::max<std::uint64_t>(1, std::min(rank, total));
    std::uint64_t cum = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
        for (const Epoch &e : r.epochs)
            cum += e.counts[b];
        if (cum >= rank)
            return bucketUpperUs(b);
    }
    return bucketUpperUs(kBuckets - 1);
}

double
SloMonitor::burnOf(const Role &r) const
{
    std::uint64_t samples = 0, viol = 0;
    for (const Epoch &e : r.epochs) {
        samples += e.samples;
        viol += e.violations;
    }
    if (samples == 0)
        return 0.0;
    double frac = double(viol) / double(samples);
    return params_.errorBudget > 0.0 ? frac / params_.errorBudget
                                     : 0.0;
}

void
SloMonitor::refresh(Tick now)
{
    for (Role &r : roles_) {
        advance(r, now);
        updateGauges(r);
    }
}

double
SloMonitor::percentileUs(SloRole role, double q) const
{
    return percentileOf(roles_[unsigned(role)], q);
}

double
SloMonitor::burnRate(SloRole role) const
{
    return burnOf(roles_[unsigned(role)]);
}

std::uint64_t
SloMonitor::windowSamples(SloRole role) const
{
    std::uint64_t total = 0;
    for (const Epoch &e : roles_[unsigned(role)].epochs)
        total += e.samples;
    return total;
}

std::uint64_t
SloMonitor::totalSamples(SloRole role) const
{
    return roles_[unsigned(role)].samples->value();
}

std::uint64_t
SloMonitor::violations(SloRole role) const
{
    return roles_[unsigned(role)].violationsTotal->value();
}

std::uint64_t
SloMonitor::breaches(SloRole role) const
{
    return roles_[unsigned(role)].breaches->value();
}

} // namespace obs
} // namespace bmhive

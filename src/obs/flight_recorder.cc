#include "obs/flight_recorder.hh"

#include <cstdio>
#include <utility>

#include "base/logging.hh"

namespace bmhive {
namespace obs {

const char *
flightEventName(FlightEvent e)
{
    switch (e) {
      case FlightEvent::DoorbellAccept:
        return "doorbell_accept";
      case FlightEvent::DoorbellThrottle:
        return "doorbell_throttle";
      case FlightEvent::DoorbellDrop:
        return "doorbell_drop";
      case FlightEvent::AvailSync:
        return "avail_sync";
      case FlightEvent::CopyvSubmit:
        return "copyv_submit";
      case FlightEvent::CopyvComplete:
        return "copyv_complete";
      case FlightEvent::UsedPublish:
        return "used_publish";
      case FlightEvent::Msi:
        return "msi";
      case FlightEvent::SchedVisit:
        return "sched_visit";
      case FlightEvent::FaultInject:
        return "fault_inject";
      case FlightEvent::FaultRecover:
        return "fault_recover";
      case FlightEvent::GuestFault:
        return "guest_fault";
      case FlightEvent::Containment:
        return "containment";
      case FlightEvent::Reset:
        return "reset";
      case FlightEvent::Respawn:
        return "respawn";
      case FlightEvent::SloBreach:
        return "slo_breach";
      case FlightEvent::Drain:
        return "drain";
      case FlightEvent::MigrateStart:
        return "migrate_start";
      case FlightEvent::MigrateCommit:
        return "migrate_commit";
      case FlightEvent::MigrateDone:
        return "migrate_done";
      case FlightEvent::MigrateAbort:
        return "migrate_abort";
      case FlightEvent::Failover:
        return "failover";
      case FlightEvent::IntegrityDetect:
        return "integrity_detect";
      case FlightEvent::IntegrityRetry:
        return "integrity_retry";
      case FlightEvent::IntegrityEscalate:
        return "integrity_escalate";
    }
    return "?";
}

FlightRecorder::FlightRecorder(std::string path,
                               MetricRegistry &registry,
                               std::size_t capacity)
    : path_(std::move(path)),
      events_(&registry.counter(path_ + ".events")),
      overwritten_(&registry.counter(path_ + ".overwritten"))
{
    panic_if(capacity == 0, path_,
             ": a flight recorder needs at least one slot");
    ring_.resize(capacity);
}

std::vector<FlightRecorder::Record>
FlightRecorder::lastEvents(std::size_t n) const
{
    if (n == 0 || n > count_)
        n = count_;
    std::vector<Record> out;
    out.reserve(n);
    // head_ is the next write position; once wrapped it is also the
    // oldest live slot. Walk the last n slots oldest-first.
    std::size_t cap = ring_.size();
    std::size_t start = count_ < cap ? count_ - n
                                     : (head_ + cap - n) % cap;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(ring_[(start + i) % cap]);
    return out;
}

std::string
FlightRecorder::toChromeJson(std::size_t n,
                             const std::string &trigger) const
{
    std::string out = "{\"displayTimeUnit\":\"ns\",";
    if (!trigger.empty())
        out += "\"otherData\":{\"trigger\":\"" + trigger + "\"},";
    out += "\"traceEvents\":[";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\":\"thread_name\",\"ph\":\"M\","
                  "\"pid\":1,\"tid\":0,"
                  "\"args\":{\"name\":\"%s\"}}",
                  path_.c_str());
    out += buf;
    for (const Record &r : lastEvents(n)) {
        // Ticks are picoseconds; trace_event "ts" is microseconds.
        std::snprintf(
            buf, sizeof(buf),
            ",\n{\"name\":\"%s\",\"cat\":\"flight\",\"ph\":\"i\","
            "\"s\":\"t\",\"ts\":%.6f,\"pid\":1,\"tid\":0,"
            "\"args\":{\"fn\":%u,\"q\":%u,\"a\":%llu,\"b\":%llu}}",
            flightEventName(r.ev), ticksToUs(r.at), unsigned(r.fn),
            unsigned(r.q), (unsigned long long)r.a,
            (unsigned long long)r.b);
        out += buf;
    }
    out += "\n]}";
    return out;
}

bool
FlightRecorder::writeChromeJson(const std::string &path,
                                std::size_t n,
                                const std::string &trigger) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::string json = toChromeJson(n, trigger);
    bool ok = std::fwrite(json.data(), 1, json.size(), f) ==
              json.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

} // namespace obs
} // namespace bmhive

#include "obs/request_tracer.hh"

#include <cstdio>
#include <utility>

#include "base/logging.hh"

namespace bmhive {
namespace obs {

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::GuestPost:
        return "guest_post";
      case Stage::ShadowSync:
        return "shadow_sync";
      case Stage::SchedDelay:
        return "sched_delay";
      case Stage::PollPickup:
        return "poll_pickup";
      case Stage::Service:
        return "service";
      case Stage::CompleteDma:
        return "complete_dma";
      case Stage::GuestIrq:
        return "guest_irq";
    }
    return "?";
}

RequestTracer::RequestTracer(std::string path,
                             MetricRegistry &registry,
                             TraceSink *sink)
    : path_(std::move(path)), sink_(sink)
{
    for (unsigned i = 1; i < numStages; ++i) {
        stage_[i] = &registry.latency(
            path_ + ".stage." + stageName(Stage(i)));
    }
    total_ = &registry.latency(path_ + ".stage.total");
    started_ = &registry.counter(path_ + ".flows.started");
    completed_ = &registry.counter(path_ + ".flows.completed");
    unmatched_ = &registry.counter(path_ + ".flows.unmatched");
    evicted_ = &registry.counter(path_ + ".flows.evicted");
    aborted_ = &registry.counter(path_ + ".flows.aborted");
    // Shared across every tracer in the registry: one place to see
    // whether any guest is leaking open flows.
    evictedGlobal_ = &registry.counter("obs.tracer.evicted_flows");
    if (sink_)
        lane_ = sink_->lane(path_);
}

void
RequestTracer::stamp(std::uint64_t key, Stage s, Tick now)
{
    if (s == Stage::GuestPost) {
        // (Re)open the flow; a key reuse implicitly abandons any
        // earlier flow that never saw its MSI.
        OpenFlow f;
        f.at[0] = now;
        f.stageSeen = 1;
        f.last = Stage::GuestPost;
        f.seq = ++seq_;
        open_[key] = f;
        order_.emplace_back(key, f.seq);
        started_->inc();
        enforceBound();
        if (sink_ && sink_->enabled())
            sink_->recordInstant(stageName(s), "io", now, lane_,
                                 key);
        return;
    }

    auto it = open_.find(key);
    if (it == open_.end()) {
        // Backend-initiated work (rx delivery) or a flow opened
        // before tracing was enabled: not an error, just unmatched.
        unmatched_->inc();
        return;
    }
    OpenFlow &f = it->second;
    Tick prev = f.at[unsigned(f.last)];
    panic_if(now < prev, path_, ": flow ", key, " stamped ",
             stageName(s), " before ", stageName(f.last));
    stage_[unsigned(s)]->record(now - prev);
    if (sink_ && sink_->enabled())
        sink_->recordComplete(stageName(s), "io", prev, now - prev,
                              lane_, key);
    f.at[unsigned(s)] = now;
    f.stageSeen |= 1u << unsigned(s);
    f.last = s;

    if (s == finalStage_) {
        Tick e2e = now - f.at[0];
        total_->record(e2e);
        completed_->inc();
        FlowRecord rec;
        rec.key = key;
        rec.at = f.at;
        rec.stageSeen = f.stageSeen;
        recent_.push_back(rec);
        if (recent_.size() > recentCap)
            recent_.pop_front();
        open_.erase(it);
        if (closeHook_)
            closeHook_(e2e, now);
    }
}

void
RequestTracer::enforceBound()
{
    while (open_.size() > maxOpen_ && !order_.empty()) {
        auto [key, seq] = order_.front();
        order_.pop_front();
        auto it = open_.find(key);
        // Stale entry: the flow closed, was dropped, or the key was
        // reopened under a newer seq. Nothing to evict for it.
        if (it == open_.end() || it->second.seq != seq)
            continue;
        open_.erase(it);
        evicted_->inc();
        evictedGlobal_->inc();
    }
    // The order log itself must stay bounded too: stale entries
    // (closed, dropped, or reopened flows) pile up behind a
    // long-lived open flow and the loop above never reaches them.
    // Compact once they outnumber live flows by a full table —
    // amortized O(1) per open.
    if (order_.size() > open_.size() + maxOpen_) {
        std::deque<std::pair<std::uint64_t, std::uint64_t>> live;
        for (const auto &[key, seq] : order_) {
            auto it = open_.find(key);
            if (it != open_.end() && it->second.seq == seq)
                live.emplace_back(key, seq);
        }
        order_.swap(live);
    }
}

void
RequestTracer::dropOpen(unsigned fn, unsigned q)
{
    std::uint64_t prefix = flowKey(fn, q, 0);
    auto it = open_.lower_bound(prefix);
    while (it != open_.end() && (it->first & ~0xffffull) == prefix) {
        it = open_.erase(it);
        aborted_->inc();
    }
    // order_ entries for the dropped keys go stale and are popped
    // lazily by enforceBound().
}

const LatencyRecorder &
RequestTracer::stageLatency(Stage s) const
{
    panic_if(s == Stage::GuestPost,
             path_, ": GuestPost opens flows, it has no latency");
    return *stage_[unsigned(s)];
}

std::string
RequestTracer::breakdown() const
{
    std::string out;
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s I/O path breakdown (%llu "
                  "flows)\n",
                  path_.c_str(),
                  (unsigned long long)completed_->value());
    out += buf;
    double sum = 0.0;
    for (unsigned i = 1; i < numStages; ++i) {
        const LatencyRecorder &r = *stage_[i];
        std::snprintf(buf, sizeof(buf),
                      "  %-14s %8.2f us mean  (n=%llu)\n",
                      stageName(Stage(i)), r.meanUs(),
                      (unsigned long long)r.count());
        out += buf;
        sum += r.meanUs();
    }
    std::snprintf(buf, sizeof(buf),
                  "  %-14s %8.2f us (stage sum %.2f us)\n",
                  "end-to-end", total_->meanUs(), sum);
    out += buf;
    return out;
}

} // namespace obs
} // namespace bmhive

/**
 * @file
 * FlightRecorder: always-on per-guest ring of compact datapath
 * events — the black box that is still there when something goes
 * wrong. Unlike TraceSink (opt-in, compile-gated by
 * BMHIVE_TRACING), the flight recorder runs unconditionally: each
 * record() writes one fixed-size POD slot of a preallocated ring,
 * O(1) with zero steady-state allocation, so it is cheap enough to
 * instrument every doorbell, DMA burst, used publish, MSI, and
 * scheduler visit of every guest in every configuration.
 *
 * The payoff comes at anomaly time: on quarantine entry, watchdog
 * recovery, reset propagation, or an SLO breach, BmHiveServer dumps
 * the implicated guest's last-N events as a Chrome trace_event JSON
 * (same format TraceSink emits, loadable in chrome://tracing or
 * Perfetto) next to the bench's --metrics-out snapshot — no
 * recompile, no re-run, no -DBMHIVE_TRACING.
 */

#ifndef BMHIVE_OBS_FLIGHT_RECORDER_HH
#define BMHIVE_OBS_FLIGHT_RECORDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "base/units.hh"
#include "obs/metric_registry.hh"

namespace bmhive {
namespace obs {

/** Compact event vocabulary of the BM-Hive datapath (Fig. 6) plus
 *  the fault/containment machinery wrapped around it. */
enum class FlightEvent : std::uint8_t {
    DoorbellAccept = 0, ///< guest notify crossed to the mailbox
    DoorbellThrottle,   ///< storm throttle swallowed the notify
    DoorbellDrop,       ///< a=1 quarantine, a=2 injected fault
    AvailSync,          ///< burst published on the shadow vring
    CopyvSubmit,        ///< DMA transfer enqueued (a=segs, b=bytes)
    CopyvComplete,      ///< DMA transfer landed (a=segs, b=bytes)
    UsedPublish,        ///< used batch returned to guest memory
    Msi,                ///< interrupt raised toward the guest
    SchedVisit,         ///< shared poll core serviced the backend
    FaultInject,        ///< injected infrastructure fault (a=kind)
    FaultRecover,       ///< resync sweep recovered chains (a=n)
    GuestFault,         ///< contained guest fault (a=kind)
    Containment,        ///< a: 0 healthy, 1 suspect, 2 quarantined
    Reset,              ///< DEVICE_NEEDS_RESET raised on fn
    Respawn,            ///< backend process respawned
    SloBreach,          ///< burn rate crossed the policy threshold
    Drain,              ///< a: 1 doorbells deferred, 0 resumed
    MigrateStart,       ///< migration left Drain (a=target server)
    MigrateCommit,      ///< source exported the guest (a=target)
    MigrateDone,        ///< guest resumed on target (a=blackout us)
    MigrateAbort,       ///< rolled back to source (a=reason)
    Failover,           ///< reactive migration off a dead server
    IntegrityDetect,    ///< checksum/scrub mismatch (a=where)
    IntegrityRetry,     ///< detected corruption healed by retry
    IntegrityEscalate,  ///< repeated corruption -> reset/migrate
};

const char *flightEventName(FlightEvent e);

class FlightRecorder
{
  public:
    /** One ring slot. POD on purpose: record() is a struct store. */
    struct Record
    {
        Tick at = 0;
        FlightEvent ev = FlightEvent::DoorbellAccept;
        std::uint16_t fn = 0;
        std::uint16_t q = 0;
        std::uint64_t a = 0;
        std::uint64_t b = 0;
    };

    /**
     * @param path hierarchical name, e.g. "server.guest0.flight";
     *        counters register under "<path>.events" /
     *        "<path>.overwritten"
     * @param capacity ring slots, preallocated here (the only
     *        allocation the recorder ever makes)
     */
    FlightRecorder(std::string path, MetricRegistry &registry,
                   std::size_t capacity = 1024);

    /** Append one event; overwrites the oldest slot when full. */
    void
    record(Tick now, FlightEvent ev, unsigned fn = 0, unsigned q = 0,
           std::uint64_t a = 0, std::uint64_t b = 0)
    {
        Record &r = ring_[head_];
        r.at = now;
        r.ev = ev;
        r.fn = std::uint16_t(fn);
        r.q = std::uint16_t(q);
        r.a = a;
        r.b = b;
        if (++head_ == ring_.size())
            head_ = 0;
        if (count_ < ring_.size())
            ++count_;
        else
            overwritten_->inc();
        events_->inc();
    }

    std::size_t capacity() const { return ring_.size(); }
    /** Live slots (== capacity once wrapped). */
    std::size_t size() const { return count_; }
    std::uint64_t recorded() const { return events_->value(); }
    std::uint64_t overwritten() const
    {
        return overwritten_->value();
    }

    /** Up to the last @p n events, oldest first (0 = everything
     *  live). Unwraps the ring; allocation is the caller's. */
    std::vector<Record> lastEvents(std::size_t n = 0) const;

    /**
     * Chrome trace_event JSON of the last @p n events: one instant
     * per record on a lane named after this recorder, with fn/q/a/b
     * carried in args. @p trigger lands in metadata so a dump says
     * why it exists. Independent of BMHIVE_TRACING.
     */
    std::string toChromeJson(std::size_t n = 0,
                             const std::string &trigger = "") const;

    /** Write toChromeJson() to @p path; false on I/O error. */
    bool writeChromeJson(const std::string &path, std::size_t n = 0,
                         const std::string &trigger = "") const;

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::vector<Record> ring_;
    std::size_t head_ = 0;  ///< next write position
    std::size_t count_ = 0; ///< live slots
    Counter *events_;
    Counter *overwritten_;
};

} // namespace obs
} // namespace bmhive

#endif // BMHIVE_OBS_FLIGHT_RECORDER_HH

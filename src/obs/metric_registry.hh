/**
 * @file
 * MetricRegistry: named handles to Counter / Gauge / Histogram /
 * LatencyRecorder instances, registered under hierarchical
 * SimObject-path names (e.g. "server.guest0.iobond.chains"), with
 * snapshot/reset support and JSON + flat-text exporters.
 *
 * Handles are get-or-create: the first registration with a name
 * constructs the metric, later registrations return the same
 * object. Accessors on the owning component and registry exports
 * therefore can never disagree — they read the same cell.
 *
 * Each Simulation owns one registry, so concurrently-built
 * testbeds (every bench builds at least two) never mix samples.
 * MetricRegistry::global() exists for code with no Simulation at
 * hand.
 */

#ifndef BMHIVE_OBS_METRIC_REGISTRY_HH
#define BMHIVE_OBS_METRIC_REGISTRY_HH

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/stats.hh"

namespace bmhive {
namespace obs {

class MetricRegistry
{
  public:
    enum class Kind { Counter, Gauge, Histogram, Latency };

    /**
     * Version of the toJson() layout, emitted as the leading
     * "schema_version" key. Bump whenever a metric object gains,
     * loses, or reorders keys; tools/metrics_check.py validates
     * against it. v2: histogram/latency percentiles, schema field.
     */
    static constexpr unsigned jsonSchemaVersion = 2;

    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** Fallback registry for code outside any Simulation. */
    static MetricRegistry &global();

    /**
     * Partitioned simulations: split storage into @p lanes shards
     * so concurrent registration from worker threads stays off one
     * map; @p resolver names the lane new metrics are created in
     * (the current partition). Names are unique across lanes and
     * exports merge in name order, so output is byte-identical to
     * an unsharded registry. Call before any concurrent use.
     */
    void shard(unsigned lanes, std::function<unsigned()> resolver);

    /** Get-or-create handles. Re-registering a name with a
     *  different kind is a bug and panics. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name, double lo,
                         double hi, std::size_t buckets);
    LatencyRecorder &latency(const std::string &name);

    bool has(const std::string &name) const;
    std::size_t size() const;

    /** Visit every metric in name order. */
    void forEach(const std::function<void(const std::string &, Kind)>
                     &fn) const;

    /**
     * One JSON object keyed by metric name. Counters are numbers;
     * gauges, histograms, and latency recorders are objects. The
     * format is what `--metrics-out` dumps and what the bench
     * trajectory files ingest.
     */
    std::string toJson() const;

    /** One "name value..." line per metric, for eyeballing. */
    std::string toText() const;

    /** Reset every metric (counters to zero, recorders emptied). */
    void resetAll();

  private:
    struct Entry
    {
        Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
        std::unique_ptr<LatencyRecorder> latency;
    };

    Entry &fetch(const std::string &name, Kind kind);
    static void appendJsonValue(std::string &out, const Entry &e);

    /** Name-ordered (name, entry) view across all lanes. */
    std::vector<std::pair<const std::string *, const Entry *>>
    merged() const;

    /** Guards lane lookup/creation; metric handles themselves are
     *  partition-affine and need no locking. */
    mutable std::mutex mu_;
    std::function<unsigned()> resolver_;
    std::vector<std::map<std::string, Entry>> lanes_{1};
};

} // namespace obs
} // namespace bmhive

#endif // BMHIVE_OBS_METRIC_REGISTRY_HH

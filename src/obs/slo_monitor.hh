/**
 * @file
 * SloMonitor: per-guest, per-role service-level indicator over the
 * doorbell->MSI span. The paper's density argument (section 3.5,
 * Fig. 10) holds only while tail latency stays flat as tenants
 * pack onto shared boards; after quarantine, shared-core
 * scheduling, and batched DMA, any of those mechanisms can shift
 * one tenant's p99 without moving an aggregate counter. This
 * monitor is the per-tenant view: RequestTracer feeds it one
 * end-to-end latency per closed flow, and it maintains a sliding
 * window of log-bucketed histograms per role (net, blk), rotated
 * in fixed sub-window epochs.
 *
 * Log bucketing (HDR-style, 4 sub-buckets per octave, ~19% worst
 * resolution) keeps record() at a handful of integer ops with no
 * allocation, so the monitor is always on. Each window rotation
 * exports p50/p90/p99/p999 and the SLO burn rate into the metric
 * registry; a burn rate at or above the policy threshold with
 * enough samples raises the breach signal (BmHiveServer wires it
 * to a flight-recorder dump).
 *
 * Burn rate follows the SRE convention: the fraction of requests
 * over the latency target, divided by the error budget. 1.0 means
 * the tenant is consuming budget exactly as fast as the SLO
 * allows; 2.0 means twice as fast.
 */

#ifndef BMHIVE_OBS_SLO_MONITOR_HH
#define BMHIVE_OBS_SLO_MONITOR_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "base/units.hh"
#include "obs/metric_registry.hh"

namespace bmhive {
namespace obs {

enum class SloRole : unsigned { Net = 0, Blk = 1 };
constexpr unsigned numSloRoles = 2;

const char *sloRoleName(SloRole r);

struct SloParams
{
    /** Sliding-window span the percentiles cover. */
    Tick window = msToTicks(5.0);
    /** Sub-window epochs the window rotates through. */
    unsigned epochs = 5;
    /** Per-role latency targets (the SLO threshold). */
    double netTargetUs = 200.0;
    double blkTargetUs = 1000.0;
    /** Allowed fraction of requests over target (p99 SLO: 1%). */
    double errorBudget = 0.01;
    /** Burn rate at/above which the breach signal fires. */
    double breachBurn = 1.0;
    /** Minimum window samples before a breach is credible. */
    std::uint64_t minWindowSamples = 64;
};

class SloMonitor
{
  public:
    using BreachCallback = std::function<void(SloRole, double burn)>;

    /**
     * @param path hierarchical name, e.g. "server.guest0.slo";
     *        per-role metrics register under "<path>.<role>.*"
     */
    SloMonitor(std::string path, MetricRegistry &registry,
               SloParams params = {});

    /** One closed flow of @p role with end-to-end @p latency. */
    void record(SloRole role, Tick latency, Tick now);

    /** Rotate stale epochs and refresh the exported gauges. */
    void refresh(Tick now);

    /**
     * Percentile in microseconds over the live window (merged
     * epochs), @p q in [0,1]. Reports the bucket upper edge, so the
     * estimate is conservative by at most one sub-bucket (~19%).
     */
    double percentileUs(SloRole role, double q) const;

    /** Violation fraction over error budget, live window. */
    double burnRate(SloRole role) const;

    std::uint64_t windowSamples(SloRole role) const;
    std::uint64_t totalSamples(SloRole role) const;
    std::uint64_t violations(SloRole role) const;
    std::uint64_t breaches(SloRole role) const;
    std::uint64_t rotations() const { return rotations_->value(); }

    void setBreachCallback(BreachCallback cb)
    {
        breachCb_ = std::move(cb);
    }

    const SloParams &params() const { return params_; }
    const std::string &path() const { return path_; }

    /** Log-bucket index of a latency (exposed for tests). */
    static unsigned bucketOf(Tick latency);
    /** Upper edge of bucket @p b in microseconds. */
    static double bucketUpperUs(unsigned b);

  private:
    /** 4 sub-buckets per octave over ns values up to 2^63. */
    static constexpr unsigned kSubBits = 2;
    static constexpr unsigned kBuckets = 63u << kSubBits;

    struct Epoch
    {
        std::uint64_t index = 0; ///< epoch number (now/epochLen)
        std::array<std::uint32_t, kBuckets> counts{};
        std::uint64_t samples = 0;
        std::uint64_t violations = 0;
    };

    struct Role
    {
        Tick targetTicks = 0;
        std::vector<Epoch> epochs;
        std::uint64_t curEpoch = 0;
        bool started = false;
        Counter *samples = nullptr;
        Counter *violationsTotal = nullptr;
        Counter *breaches = nullptr;
        Gauge *p50 = nullptr;
        Gauge *p90 = nullptr;
        Gauge *p99 = nullptr;
        Gauge *p999 = nullptr;
        Gauge *burn = nullptr;
    };

    /** Rotate @p r to the epoch containing @p now; evaluates the
     *  breach condition and refreshes gauges on each rotation. */
    void advance(Role &r, Tick now);
    void updateGauges(Role &r);
    double percentileOf(const Role &r, double q) const;
    double burnOf(const Role &r) const;

    std::string path_;
    SloParams params_;
    Tick epochLen_;
    std::array<Role, numSloRoles> roles_;
    Counter *rotations_;
    BreachCallback breachCb_;
};

} // namespace obs
} // namespace bmhive

#endif // BMHIVE_OBS_SLO_MONITOR_HH

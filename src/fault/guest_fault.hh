/**
 * @file
 * Typed taxonomy of guest-inflicted protocol violations.
 *
 * Everything a bm-guest writes — config space, BAR registers,
 * doorbells, descriptors, avail rings, indirect tables — crosses
 * the IO-Bond trust boundary as attacker-controlled input (paper
 * sections 3.3-3.4). Each violation the untrusted-input audit can
 * detect is one GuestFaultKind; detection sites count the fault
 * under "<component>.guest.faults.<kind>" and contain it per queue
 * or per guest, never fatally for the server.
 */

#ifndef BMHIVE_FAULT_GUEST_FAULT_HH
#define BMHIVE_FAULT_GUEST_FAULT_HH

#include <cstddef>

namespace bmhive {
namespace fault {

enum class GuestFaultKind {
    /** Doorbell or queue-register access naming a queue the
     *  function does not have. */
    BadQueueIndex,
    /** MSI vector write beyond the function's vector table. */
    BadMsiVector,
    /** Feature-negotiation protocol violation: FEATURES_OK without
     *  VIRTIO_F_VERSION_1, or feature writes after FEATURES_OK. */
    BadFeatureWrite,
    /** Config-space access with a bad size or out-of-range offset. */
    BadConfigAccess,
    /** Queue enabled with ring areas outside guest memory. */
    BadRingAddress,
    /** avail->idx advanced further than the ring size in one
     *  doorbell: the ring content cannot all be valid. */
    AvailIdxJump,
    /** Descriptor chain references an index outside the table. */
    DescIndexRange,
    /** Descriptor chain loops (visits more entries than exist). */
    DescLoop,
    /** Descriptor buffer lies (partly) outside guest memory. */
    DescAddrRange,
    /** Zero-length descriptor buffer. */
    DescLenZero,
    /** Chain total exceeds the per-request budget. */
    DescLenOversized,
    /** Device-readable segment after a device-writable one
     *  (write-flag abuse; the spec orders read-first). */
    DescWriteOrder,
    /** Indirect descriptor violating the spec: INDIRECT|NEXT,
     *  non-sole, bad table length, nested indirection, or a table
     *  outside guest memory. */
    IndirectMalformed,
    /** Doorbell rate above the token-bucket contract. */
    DoorbellStorm,
    /** Multi-queue set-queue-pairs write of zero or more pairs than
     *  the device offered (clamped, counted, contained). */
    BadQueuePairs,
    kCount,
};

constexpr std::size_t guestFaultKinds =
    std::size_t(GuestFaultKind::kCount);

/** Stable snake_case name, used as the metric-name suffix. */
constexpr const char *
guestFaultName(GuestFaultKind k)
{
    switch (k) {
      case GuestFaultKind::BadQueueIndex:
        return "bad_queue_index";
      case GuestFaultKind::BadMsiVector:
        return "bad_msi_vector";
      case GuestFaultKind::BadFeatureWrite:
        return "bad_feature_write";
      case GuestFaultKind::BadConfigAccess:
        return "bad_config_access";
      case GuestFaultKind::BadRingAddress:
        return "bad_ring_address";
      case GuestFaultKind::AvailIdxJump:
        return "avail_idx_jump";
      case GuestFaultKind::DescIndexRange:
        return "desc_index_range";
      case GuestFaultKind::DescLoop:
        return "desc_loop";
      case GuestFaultKind::DescAddrRange:
        return "desc_addr_range";
      case GuestFaultKind::DescLenZero:
        return "desc_len_zero";
      case GuestFaultKind::DescLenOversized:
        return "desc_len_oversized";
      case GuestFaultKind::DescWriteOrder:
        return "desc_write_order";
      case GuestFaultKind::IndirectMalformed:
        return "indirect_malformed";
      case GuestFaultKind::DoorbellStorm:
        return "doorbell_storm";
      case GuestFaultKind::BadQueuePairs:
        return "bad_queue_pairs";
      default:
        return "unknown";
    }
}

} // namespace fault
} // namespace bmhive

#endif // BMHIVE_FAULT_GUEST_FAULT_HH

/**
 * @file
 * FaultInjector: schedules faults from a declarative plan and
 * delivers them through the simulation's FaultHookRegistry.
 *
 * A plan is a time-ordered list of (tick, target, spec) entries,
 * built programmatically (at()), parsed from a plan file
 * (loadPlan()), or generated from a seed (randomPlan()). The
 * random generator is the injector's own Rng, independent of the
 * simulation's stream, so the fault schedule for a given seed is
 * identical no matter which workload runs — the determinism
 * guarantee DESIGN.md section 10 documents.
 *
 * Plan file grammar (one entry per line, '#' comments):
 *
 *   <time_us> <target> <kind> [count=N] [dur_us=X] [mag=X]
 *
 * e.g.  1500 server.guest0.iobond link_flap dur_us=80
 */

#ifndef BMHIVE_FAULT_FAULT_INJECTOR_HH
#define BMHIVE_FAULT_FAULT_INJECTOR_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "base/random.hh"
#include "base/stats.hh"
#include "fault/fault.hh"
#include "sim/sim_object.hh"

namespace bmhive {
namespace fault {

class FaultInjector : public SimObject
{
  public:
    struct PlanEntry
    {
        Tick at = 0;
        std::string target;
        FaultSpec spec;
    };

    /** A target eligible for randomPlan, with the kinds it models. */
    struct RandomTarget
    {
        std::string name;
        std::vector<FaultKind> kinds;
    };

    FaultInjector(Simulation &sim, std::string name);

    /** Append one planned fault at absolute tick @p when. */
    void at(Tick when, std::string target, FaultSpec spec);

    /**
     * Parse a plan file (grammar above) and append its entries.
     * Returns false (with the plan unchanged) on a malformed line
     * or unreadable file.
     */
    bool loadPlan(const std::string &path);

    /**
     * Append @p events faults drawn deterministically from
     * @p seed: uniform times in [0, horizon), uniform choice of
     * target and kind, kind-appropriate knobs.
     */
    void randomPlan(std::uint64_t seed,
                    const std::vector<RandomTarget> &targets,
                    Tick horizon, unsigned events);

    /**
     * Schedule every not-yet-armed plan entry on the event queue.
     * Entries in the past fire immediately (next event-loop turn).
     */
    void arm();

    const std::vector<PlanEntry> &plan() const { return plan_; }

    /** Faults accepted by a component hook. */
    std::uint64_t injected() const { return injected_.value(); }
    /** Faults with no registered/matching component. */
    std::uint64_t unmatched() const { return unmatched_.value(); }

    /**
     * Observe every delivery as it fires (after the component hook
     * ran; @p accepted says whether any hook claimed it). Flight
     * recorders subscribe here so injected chaos shows up in
     * anomaly dumps alongside the datapath events it perturbed.
     */
    using Observer =
        std::function<void(const PlanEntry &, bool accepted)>;
    void setObserver(Observer obs) { observer_ = std::move(obs); }

    static const char *kindName(FaultKind k);
    static std::optional<FaultKind>
    kindFromName(const std::string &s);

  private:
    void deliver(const PlanEntry &e);

    std::vector<PlanEntry> plan_;
    std::size_t armed_ = 0; ///< plan_ entries already scheduled
    Counter &injected_;
    Counter &unmatched_;
    Observer observer_;
};

} // namespace fault
} // namespace bmhive

#endif // BMHIVE_FAULT_FAULT_INJECTOR_HH

/**
 * @file
 * Fault-injection core types. FaultHookRegistry lives on the
 * Simulation (like the metric registry) and maps dotted component
 * paths to injection hooks; components that support fault
 * injection register a hook under their SimObject name at
 * construction and remove it at destruction. The FaultInjector
 * SimObject (fault/fault_injector.hh) delivers FaultSpecs from a
 * declarative plan through this registry, so injection sites and
 * schedules stay decoupled.
 *
 * Header-only and dependency-free below base/ so Simulation can
 * own a registry without a library cycle.
 */

#ifndef BMHIVE_FAULT_FAULT_HH
#define BMHIVE_FAULT_FAULT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "base/units.hh"

namespace bmhive {
namespace fault {

/**
 * The fault taxonomy (DESIGN.md section 10). Each kind is handled
 * by the component class named in the comment; delivering a kind
 * to a component that does not model it is counted by the
 * injector as unmatched and otherwise ignored.
 */
enum class FaultKind : unsigned {
    DmaCorrupt,   ///< mem::DmaEngine: payload bytes flipped
    DmaFail,      ///< mem::DmaEngine: transfer dropped, error raised
    DmaCorruptMeta, ///< iobond::IoBond: shadow-ring metadata flipped
    FabricCorrupt,  ///< VSwitch/BlockService: bytes flipped in fabric
    LinkFlap,     ///< iobond::IoBond: PCIe link down for `duration`
    DropDoorbell, ///< iobond::IoBond: next `count` doorbells lost
    FunctionFail, ///< iobond::IoBond: function `magnitude` is dead
    BlockLose,    ///< cloud::BlockService: requests never complete
    BlockDelay,   ///< cloud::BlockService: latency spike
    PortStall,    ///< cloud::VSwitch: port `magnitude` stalls
    HvStall,      ///< hv::BmHypervisor: poll loop stops for a while
    HvCrash,      ///< hv::BmHypervisor: process dies
    ServerPowerLoss, ///< fleet: base server loses power
    BoardFail,       ///< fleet: compute board `magnitude` dies
    FabricPartition, ///< fleet: server unreachable for `duration`
};

/** One scheduled fault. Fields are kind-specific knobs. */
struct FaultSpec
{
    FaultKind kind = FaultKind::DmaCorrupt;
    /** How many operations the fault applies to (budgeted kinds). */
    std::uint64_t count = 1;
    /** How long the fault condition lasts (flap/stall kinds). */
    Tick duration = 0;
    /** Kind-specific scalar (function index, port, delay scale). */
    double magnitude = 0.0;
};

/**
 * Name -> hook table. A hook receives the spec and returns true if
 * the component modeled the fault (false = kind unsupported).
 *
 * Map operations are mutex-guarded: in a partitioned simulation a
 * hypervisor respawning inside a server partition registers its
 * new service generation's hooks while other partitions (or the
 * control-side injector) touch the table. Hooks themselves run
 * outside the lock — a hook body is free to add/remove entries.
 */
class FaultHookRegistry
{
  public:
    using Hook = std::function<bool(const FaultSpec &)>;

    /** Register @p hook under the component path @p name. */
    void add(const std::string &name, Hook hook)
    {
        std::lock_guard<std::mutex> lk(mu_);
        hooks_[name] = std::move(hook);
    }

    /** Remove the hook (call from the component's destructor). */
    void remove(const std::string &name)
    {
        std::lock_guard<std::mutex> lk(mu_);
        hooks_.erase(name);
    }

    bool has(const std::string &name) const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return hooks_.count(name) != 0;
    }

    /**
     * Deliver @p spec to the component at @p name. Returns false
     * when no component is registered under that path or the
     * component does not model the kind.
     */
    bool
    deliver(const std::string &name, const FaultSpec &spec) const
    {
        Hook hook;
        {
            std::lock_guard<std::mutex> lk(mu_);
            auto it = hooks_.find(name);
            if (it == hooks_.end())
                return false;
            hook = it->second;
        }
        return hook(spec);
    }

  private:
    mutable std::mutex mu_;
    std::map<std::string, Hook> hooks_;
};

} // namespace fault
} // namespace bmhive

#endif // BMHIVE_FAULT_FAULT_HH

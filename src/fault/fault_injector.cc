#include "fault/fault_injector.hh"

#include <cstdio>
#include <sstream>
#include <utility>

#include "base/logging.hh"

namespace bmhive {
namespace fault {

namespace {

struct KindEntry
{
    FaultKind kind;
    const char *name;
};

constexpr KindEntry kindTable[] = {
    {FaultKind::DmaCorrupt, "dma_corrupt"},
    {FaultKind::DmaFail, "dma_fail"},
    {FaultKind::DmaCorruptMeta, "dma_corrupt_meta"},
    {FaultKind::FabricCorrupt, "fabric_corrupt"},
    {FaultKind::LinkFlap, "link_flap"},
    {FaultKind::DropDoorbell, "drop_doorbell"},
    {FaultKind::FunctionFail, "function_fail"},
    {FaultKind::BlockLose, "block_lose"},
    {FaultKind::BlockDelay, "block_delay"},
    {FaultKind::PortStall, "port_stall"},
    {FaultKind::HvStall, "hv_stall"},
    {FaultKind::HvCrash, "hv_crash"},
    {FaultKind::ServerPowerLoss, "server_power_loss"},
    {FaultKind::BoardFail, "board_fail"},
    {FaultKind::FabricPartition, "fabric_partition"},
};

/** Kind-appropriate knob defaults for randomly drawn faults. */
FaultSpec
randomSpec(FaultKind k, Rng &rng)
{
    FaultSpec s;
    s.kind = k;
    switch (k) {
      case FaultKind::DmaCorrupt:
      case FaultKind::DmaFail:
      case FaultKind::DmaCorruptMeta:
      case FaultKind::FabricCorrupt:
      case FaultKind::DropDoorbell:
        s.count = rng.uniformInt(1, 4);
        break;
      case FaultKind::LinkFlap:
      case FaultKind::PortStall:
      case FaultKind::HvStall:
        s.duration = usToTicks(rng.uniformInt(20, 200));
        break;
      case FaultKind::FabricPartition:
        s.duration = usToTicks(rng.uniformInt(100, 800));
        break;
      case FaultKind::BlockLose:
        s.count = rng.uniformInt(1, 3);
        break;
      case FaultKind::BlockDelay:
        s.count = rng.uniformInt(1, 8);
        s.magnitude = double(rng.uniformInt(2, 8));
        break;
      case FaultKind::FunctionFail:
      case FaultKind::HvCrash:
      case FaultKind::ServerPowerLoss:
      case FaultKind::BoardFail:
        break;
    }
    return s;
}

} // namespace

FaultInjector::FaultInjector(Simulation &sim, std::string name)
    : SimObject(sim, std::move(name)),
      injected_(metrics().counter(this->name() + ".fault.injected")),
      unmatched_(metrics().counter(this->name() + ".fault.unmatched"))
{
}

void
FaultInjector::at(Tick when, std::string target, FaultSpec spec)
{
    plan_.push_back({when, std::move(target), spec});
}

bool
FaultInjector::loadPlan(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f) {
        warn(name(), ": cannot open fault plan ", path);
        return false;
    }
    std::vector<PlanEntry> parsed;
    char line[512];
    unsigned lineno = 0;
    bool ok = true;
    while (ok && std::fgets(line, sizeof(line), f)) {
        ++lineno;
        std::string text(line);
        auto hash = text.find('#');
        if (hash != std::string::npos)
            text.resize(hash);
        std::istringstream in(text);
        double time_us;
        std::string target, kind_name;
        if (!(in >> time_us)) // blank or comment-only line
            continue;
        if (!(in >> target >> kind_name)) {
            ok = false;
            break;
        }
        auto kind = kindFromName(kind_name);
        if (!kind) {
            warn(name(), ": ", path, ":", lineno,
                 ": unknown fault kind '", kind_name, "'");
            ok = false;
            break;
        }
        PlanEntry e;
        e.at = usToTicks(time_us);
        e.target = target;
        e.spec.kind = *kind;
        std::string opt;
        while (ok && (in >> opt)) {
            auto eq = opt.find('=');
            if (eq == std::string::npos) {
                ok = false;
                break;
            }
            std::string key = opt.substr(0, eq);
            double val = std::atof(opt.c_str() + eq + 1);
            if (key == "count")
                e.spec.count = std::uint64_t(val);
            else if (key == "dur_us")
                e.spec.duration = usToTicks(val);
            else if (key == "mag")
                e.spec.magnitude = val;
            else
                ok = false;
        }
        if (ok)
            parsed.push_back(std::move(e));
    }
    std::fclose(f);
    if (!ok) {
        warn(name(), ": malformed fault plan ", path, " line ",
             lineno);
        return false;
    }
    for (auto &e : parsed)
        plan_.push_back(std::move(e));
    return true;
}

void
FaultInjector::randomPlan(std::uint64_t seed,
                          const std::vector<RandomTarget> &targets,
                          Tick horizon, unsigned events)
{
    if (targets.empty() || events == 0)
        return;
    // Private stream: the schedule depends only on the seed, never
    // on how much randomness the workload has consumed.
    Rng rng(seed);
    for (unsigned i = 0; i < events; ++i) {
        const RandomTarget &t =
            targets[rng.uniformInt(0, targets.size() - 1)];
        if (t.kinds.empty())
            continue;
        FaultKind k = t.kinds[rng.uniformInt(0, t.kinds.size() - 1)];
        Tick when = Tick(rng.uniformInt(0, horizon ? horizon - 1 : 0));
        at(when, t.name, randomSpec(k, rng));
    }
}

void
FaultInjector::arm()
{
    for (; armed_ < plan_.size(); ++armed_) {
        const PlanEntry &e = plan_[armed_];
        Tick when = e.at < curTick() ? curTick() : e.at;
        auto *ev = new OneShotEvent(
            [this, idx = armed_] { deliver(plan_[idx]); },
            name() + ".fire");
        eventq().schedule(ev, when);
    }
}

void
FaultInjector::deliver(const PlanEntry &e)
{
    bool hit = sim_.faults().deliver(e.target, e.spec);
    if (hit) {
        injected_.inc();
    } else {
        unmatched_.inc();
        warn(name(), ": fault '", kindName(e.spec.kind),
             "' unmatched at target '", e.target, "'");
    }
    if (observer_)
        observer_(e, hit);
    auto &sink = traceSink();
    if (sink.enabled()) {
        sink.recordInstant(
            std::string(kindName(e.spec.kind)) + "@" + e.target,
            "fault", curTick(), sink.lane(name()));
    }
    logDebug("fault ", kindName(e.spec.kind), " -> ", e.target,
             hit ? "" : " (unmatched)");
}

const char *
FaultInjector::kindName(FaultKind k)
{
    for (const auto &e : kindTable)
        if (e.kind == k)
            return e.name;
    return "unknown";
}

std::optional<FaultKind>
FaultInjector::kindFromName(const std::string &s)
{
    for (const auto &e : kindTable)
        if (s == e.name)
            return e.kind;
    return std::nullopt;
}

} // namespace fault
} // namespace bmhive
